//! A main-memory Slim-tree: the metric access method MCCATCH uses for
//! nondimensional data (Traina Jr. et al., IEEE TKDE 2002; footnote 4 of
//! the MCCATCH paper).
//!
//! Design notes:
//!
//! * **Structure.** A balanced-by-construction M-tree-family structure:
//!   leaves hold point ids; internal nodes hold routing entries
//!   `(representative, covering radius, child, subtree size)`.
//! * **Insertion** descends choosing the child whose covering radius grows
//!   least (preferring children that already cover the point, breaking ties
//!   by distance — the Slim-tree `minDist` policy).
//! * **Splits** use the Slim-tree's signature *MST split*: a minimum
//!   spanning tree over the overflowing entries is cut at its longest edge,
//!   and each side is represented by its minimum-covering-radius member.
//! * **Queries** prune with the triangle inequality twice: against the
//!   stored parent distance (avoiding a distance computation entirely) and
//!   against the covering radius. Count queries additionally use the
//!   *covered-subtree shortcut*: when a node's bounding ball lies entirely
//!   inside the query ball, its stored subtree size is added without
//!   descending — this is what makes the paper's count-only joins cheap
//!   ("compact similarity joins", Sec. IV-G).
//! * **Determinism.** No randomness anywhere; ties break on index order.

use crate::multi::MultiCounter;
use crate::{DistanceStats, IndexBuilder, Neighbor, OrdF64, RangeIndex, SmallCounts};
use mccatch_metric::Metric;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Builder for [`SlimTree`]. `node_capacity` is the maximum number of
/// entries per node (minimum 4); 32 is a good default for main memory.
#[derive(Debug, Clone, Copy)]
pub struct SlimTreeBuilder {
    /// Maximum entries per node before a split.
    pub node_capacity: usize,
}

impl Default for SlimTreeBuilder {
    fn default() -> Self {
        Self { node_capacity: 32 }
    }
}

impl SlimTreeBuilder {
    /// Builder with a custom node capacity (clamped to at least 4).
    pub fn with_capacity(node_capacity: usize) -> Self {
        Self {
            node_capacity: node_capacity.max(4),
        }
    }
}

impl<P: Send + Sync, M: Metric<P>> IndexBuilder<P, M> for SlimTreeBuilder {
    type Index = SlimTree<P, M>;

    fn build(&self, points: Arc<[P]>, ids: Vec<u32>, metric: Arc<M>) -> Self::Index {
        SlimTree::build(points, ids, metric, self.node_capacity)
    }

    fn backend_name(&self) -> &'static str {
        "slim"
    }
}

#[derive(Debug, Clone, Copy)]
struct RoutingEntry {
    /// Id of the routing (representative) point.
    rep: u32,
    /// Covering radius: every point in the subtree is within `radius` of `rep`.
    radius: f64,
    /// Distance from `rep` to the routing point of the parent entry
    /// (0 for entries of the root node).
    dist_to_parent: f64,
    /// Index of the child node in the arena.
    child: u32,
    /// Number of points stored in the subtree.
    subtree: u32,
}

#[derive(Debug, Clone, Copy)]
struct LeafEntry {
    /// Dataset id of the stored point.
    id: u32,
    /// Distance to the routing point of the parent entry (0 if root is a leaf).
    dist_to_parent: f64,
}

#[derive(Debug)]
enum Node {
    Leaf(Vec<LeafEntry>),
    Internal(Vec<RoutingEntry>),
}

/// A Slim-tree over `points[ids]` using `metric`; owns `Arc` handles to
/// the dataset and metric, so it has no lifetime. See the module docs.
#[derive(Debug)]
pub struct SlimTree<P, M: Metric<P>> {
    points: Arc<[P]>,
    metric: Arc<M>,
    nodes: Vec<Node>,
    root: u32,
    len: usize,
    capacity: usize,
    /// Distance evaluations (construction + queries). Relaxed ordering:
    /// read only after joins complete; queries batch their updates.
    evals: AtomicU64,
}

impl<P, M: Metric<P>> SlimTree<P, M> {
    /// Builds a tree by successive insertion of `ids` in the given order.
    pub fn build(
        points: impl Into<Arc<[P]>>,
        ids: Vec<u32>,
        metric: impl Into<Arc<M>>,
        node_capacity: usize,
    ) -> Self {
        let capacity = node_capacity.max(4);
        let mut tree = Self {
            points: points.into(),
            metric: metric.into(),
            nodes: vec![Node::Leaf(Vec::new())],
            root: 0,
            len: 0,
            capacity,
            evals: AtomicU64::new(0),
        };
        for id in ids {
            tree.insert(id);
        }
        tree
    }

    #[inline]
    fn point(&self, id: u32) -> &P {
        &self.points[id as usize]
    }

    #[inline]
    fn dist(&self, a: u32, b: u32) -> f64 {
        self.metric.distance(self.point(a), self.point(b))
    }

    fn insert(&mut self, id: u32) {
        self.len += 1;
        // Descend to a leaf, tracking the path of (node, entry) choices and
        // the distance from the inserted point to the chosen routing point.
        let mut path: Vec<(u32, usize)> = Vec::new();
        let mut node = self.root;
        let mut dist_to_rep = 0.0; // distance to current parent rep (root: none)
        let mut build_evals = 0u64;
        loop {
            match &mut self.nodes[node as usize] {
                Node::Leaf(entries) => {
                    entries.push(LeafEntry {
                        id,
                        dist_to_parent: dist_to_rep,
                    });
                    break;
                }
                Node::Internal(entries) => {
                    build_evals += entries.len() as u64;
                    // Choose the entry needing the least radius growth;
                    // among already-covering entries, the closest one.
                    let mut best = 0usize;
                    let mut best_key = (OrdF64(f64::INFINITY), OrdF64(f64::INFINITY));
                    let mut best_d = 0.0;
                    for (k, e) in entries.iter().enumerate() {
                        let d = self
                            .metric
                            .distance(&self.points[id as usize], &self.points[e.rep as usize]);
                        let growth = (d - e.radius).max(0.0);
                        let key = (OrdF64(growth), OrdF64(d));
                        if key < best_key {
                            best_key = key;
                            best = k;
                            best_d = d;
                        }
                    }
                    let e = &mut entries[best];
                    e.radius = e.radius.max(best_d);
                    e.subtree += 1;
                    let child = e.child;
                    path.push((node, best));
                    dist_to_rep = best_d;
                    node = child;
                }
            }
        }
        *self.evals.get_mut() += build_evals;
        // Split up the path while nodes overflow.
        let mut overflowing = node;
        while self.node_len(overflowing) > self.capacity {
            let parent = path.pop();
            let grand = path.last().copied();
            self.split(overflowing, parent, grand);
            match parent {
                Some((p, _)) => overflowing = p,
                None => break,
            }
        }
    }

    fn node_len(&self, node: u32) -> usize {
        match &self.nodes[node as usize] {
            Node::Leaf(v) => v.len(),
            Node::Internal(v) => v.len(),
        }
    }

    /// Splits `node`. `parent`: the (node, entry) routing slot pointing at
    /// `node`, or `None` if `node` is the root. `grand`: the slot pointing
    /// at the parent node (its rep is the parent's routing point), needed
    /// to recompute `dist_to_parent` for the two replacement entries.
    fn split(&mut self, node: u32, parent: Option<(u32, usize)>, grand: Option<(u32, usize)>) {
        // Representative point of each member entry.
        let reps: Vec<u32> = match &self.nodes[node as usize] {
            Node::Leaf(v) => v.iter().map(|e| e.id).collect(),
            Node::Internal(v) => v.iter().map(|e| e.rep).collect(),
        };
        let m = reps.len();
        debug_assert!(m >= 2);
        // Pairwise distances among representatives (m <= capacity + 1).
        let mut dm = vec![0.0f64; m * m];
        for i in 0..m {
            for j in (i + 1)..m {
                let d = self.dist(reps[i], reps[j]);
                dm[i * m + j] = d;
                dm[j * m + i] = d;
            }
        }
        *self.evals.get_mut() += (m * (m - 1) / 2) as u64;
        let side = mst_split(&dm, m);
        // New representative per side: the member minimizing its covering
        // radius over that side (accounting for child radii when internal).
        let child_radius = |k: usize| -> f64 {
            match &self.nodes[node as usize] {
                Node::Leaf(_) => 0.0,
                Node::Internal(v) => v[k].radius,
            }
        };
        let mut side_members: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        for (k, &s) in side.iter().enumerate() {
            side_members[s as usize].push(k);
        }
        debug_assert!(!side_members[0].is_empty() && !side_members[1].is_empty());
        let pick_rep = |members: &[usize]| -> (usize, f64) {
            let mut best = members[0];
            let mut best_r = f64::INFINITY;
            for &cand in members {
                let mut r = 0.0f64;
                for &other in members {
                    r = r.max(dm[cand * m + other] + child_radius(other));
                }
                if r < best_r {
                    best_r = r;
                    best = cand;
                }
            }
            (best, best_r)
        };
        let (rep0, rad0) = pick_rep(&side_members[0]);
        let (rep1, rad1) = pick_rep(&side_members[1]);

        // Materialize the two sides as new nodes.
        let old = std::mem::replace(&mut self.nodes[node as usize], Node::Leaf(Vec::new()));
        let (n0, n1, sz0, sz1) = match old {
            Node::Leaf(entries) => {
                let mk = |members: &[usize], rep: usize| -> Vec<LeafEntry> {
                    members
                        .iter()
                        .map(|&k| LeafEntry {
                            id: entries[k].id,
                            dist_to_parent: dm[rep * m + k],
                        })
                        .collect()
                };
                let v0 = mk(&side_members[0], rep0);
                let v1 = mk(&side_members[1], rep1);
                let (s0, s1) = (v0.len() as u32, v1.len() as u32);
                (Node::Leaf(v0), Node::Leaf(v1), s0, s1)
            }
            Node::Internal(entries) => {
                let mk = |members: &[usize], rep: usize| -> Vec<RoutingEntry> {
                    members
                        .iter()
                        .map(|&k| RoutingEntry {
                            dist_to_parent: dm[rep * m + k],
                            ..entries[k]
                        })
                        .collect()
                };
                let v0 = mk(&side_members[0], rep0);
                let v1 = mk(&side_members[1], rep1);
                let (s0, s1) = (
                    v0.iter().map(|e| e.subtree).sum(),
                    v1.iter().map(|e| e.subtree).sum(),
                );
                (Node::Internal(v0), Node::Internal(v1), s0, s1)
            }
        };
        // Reuse the old slot for side 0; allocate side 1.
        self.nodes[node as usize] = n0;
        let node1 = self.nodes.len() as u32;
        self.nodes.push(n1);

        let (rep0_id, rep1_id) = (reps[rep0], reps[rep1]);
        match parent {
            Some((pnode, pentry)) => {
                // Distance from new reps to the parent's own routing point
                // (the rep of the grandparent entry covering `pnode`).
                // Entries in the root have no routing point; their
                // dist_to_parent is never consulted.
                let parent_rep = grand.map(|(gn, ge)| match &self.nodes[gn as usize] {
                    Node::Internal(es) => es[ge].rep,
                    Node::Leaf(_) => unreachable!("grandparent is internal"),
                });
                let dtp0 = parent_rep.map_or(0.0, |g| self.dist(g, rep0_id));
                let dtp1 = parent_rep.map_or(0.0, |g| self.dist(g, rep1_id));
                if parent_rep.is_some() {
                    *self.evals.get_mut() += 2;
                }
                let Node::Internal(pentries) = &mut self.nodes[pnode as usize] else {
                    unreachable!("parent of a split node is internal");
                };
                pentries[pentry] = RoutingEntry {
                    rep: rep0_id,
                    radius: rad0,
                    dist_to_parent: dtp0,
                    child: node,
                    subtree: sz0,
                };
                pentries.push(RoutingEntry {
                    rep: rep1_id,
                    radius: rad1,
                    dist_to_parent: dtp1,
                    child: node1,
                    subtree: sz1,
                });
            }
            None => {
                // Root split: grow the tree by one level.
                let new_root = self.nodes.len() as u32;
                self.nodes.push(Node::Internal(vec![
                    RoutingEntry {
                        rep: rep0_id,
                        radius: rad0,
                        dist_to_parent: 0.0,
                        child: node,
                        subtree: sz0,
                    },
                    RoutingEntry {
                        rep: rep1_id,
                        radius: rad1,
                        dist_to_parent: 0.0,
                        child: node1,
                        subtree: sz1,
                    },
                ]));
                self.root = new_root;
            }
        }
    }

    /// Walks the tree checking every structural invariant; used by tests.
    /// Returns the total number of points found.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> usize {
        fn walk<P, M: Metric<P>>(
            t: &SlimTree<P, M>,
            node: u32,
            parent_rep: Option<u32>,
            ancestors: &mut Vec<(u32, f64)>,
        ) -> usize {
            match &t.nodes[node as usize] {
                Node::Leaf(entries) => {
                    for e in entries {
                        for &(rep, radius) in ancestors.iter() {
                            let d = t.dist(rep, e.id);
                            assert!(
                                d <= radius + 1e-9,
                                "point {} outside covering ball of rep {rep}",
                                e.id
                            );
                        }
                        if let Some(pr) = parent_rep {
                            let d = t.dist(pr, e.id);
                            assert!(
                                (d - e.dist_to_parent).abs() <= 1e-9,
                                "stale leaf dist_to_parent for point {}",
                                e.id
                            );
                        }
                    }
                    entries.len()
                }
                Node::Internal(entries) => {
                    let mut total = 0;
                    for e in entries {
                        if let Some(pr) = parent_rep {
                            let d = t.dist(pr, e.rep);
                            assert!(
                                (d - e.dist_to_parent).abs() <= 1e-9,
                                "stale routing dist_to_parent for rep {}",
                                e.rep
                            );
                        }
                        ancestors.push((e.rep, e.radius));
                        let sub = walk(t, e.child, Some(e.rep), ancestors);
                        ancestors.pop();
                        assert_eq!(sub, e.subtree as usize, "subtree size mismatch");
                        total += sub;
                    }
                    total
                }
            }
        }
        let mut anc = Vec::new();
        let total = walk(self, self.root, None, &mut anc);
        assert_eq!(total, self.len);
        total
    }

    fn count_rec(
        &self,
        node: u32,
        q: &P,
        r: f64,
        d_q_parent: Option<f64>,
        evals: &mut u64,
    ) -> usize {
        match &self.nodes[node as usize] {
            Node::Leaf(entries) => {
                let mut c = 0;
                for e in entries {
                    if let Some(dqp) = d_q_parent {
                        // Triangle: |d(q,parent) - d(p,parent)| <= d(q,p).
                        if (dqp - e.dist_to_parent).abs() > r {
                            continue;
                        }
                    }
                    *evals += 1;
                    if self.metric.distance(q, self.point(e.id)) <= r {
                        c += 1;
                    }
                }
                c
            }
            Node::Internal(entries) => {
                let mut c = 0;
                for e in entries {
                    if let Some(dqp) = d_q_parent {
                        if (dqp - e.dist_to_parent).abs() > r + e.radius {
                            continue;
                        }
                    }
                    *evals += 1;
                    let d = self.metric.distance(q, self.point(e.rep));
                    if d + e.radius <= r {
                        // Covered-subtree shortcut: whole ball inside query.
                        c += e.subtree as usize;
                    } else if d <= r + e.radius {
                        c += self.count_rec(e.child, q, r, Some(d), evals);
                    }
                }
                c
            }
        }
    }

    /// Single-traversal multi-radius count over the window `[lo, hi)` of
    /// `radii` (ascending): one routing distance per entry serves every
    /// column at once. Entries wholly inside a suffix of the grid are
    /// bulk-added via their stored subtree size (the covered-subtree
    /// shortcut applied per column), entries out of reach of every active
    /// radius are skipped without a distance evaluation (the stored
    /// parent-distance triangle bound), and columns at or past the counter
    /// watermark can only end OVER and are no longer refined. All
    /// predicates are textually those of [`Self::count_rec`] — including
    /// the triangle-bound skip, folded in via `max(d, bound)` — so counts
    /// match the per-radius path bit for bit.
    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn multi_rec(
        &self,
        node: u32,
        q: &P,
        radii: &[f64],
        lo: usize,
        hi: usize,
        d_q_parent: Option<f64>,
        counter: &mut MultiCounter,
    ) {
        match &self.nodes[node as usize] {
            Node::Leaf(entries) => {
                let hi = hi.min(counter.hi_cap());
                if lo >= hi {
                    return;
                }
                let mut evals = 0;
                let scratch = counter.scratch_mut();
                for e in entries {
                    let bound = d_q_parent.map(|dqp| (dqp - e.dist_to_parent).abs());
                    if bound.is_some_and(|b| b > radii[hi - 1]) {
                        // Beyond every active radius: the per-radius path
                        // skips this point at each of them.
                        continue;
                    }
                    evals += 1;
                    let d = self.metric.distance(q, self.point(e.id));
                    // The per-radius path also skips columns the triangle
                    // bound excludes, so bucket on the larger of the two.
                    scratch.push(bound.map_or(d, |b| d.max(b)));
                }
                counter.evals += evals;
                counter.add_leaf(&radii[lo..hi], lo, hi);
            }
            Node::Internal(entries) => {
                let ehi0 = hi.min(counter.hi_cap());
                if lo >= ehi0 {
                    return;
                }
                // One routing distance per entry, then process entries
                // nearest-ball-first: the query's dense neighborhood is
                // what pushes the running counts past the cap, so visiting
                // it early collapses the window to the small radii before
                // the expensive far subtrees are descended. The order
                // buffer lives on the stack for ordinary node capacities —
                // this runs once per internal node per query.
                const ORDER_INLINE: usize = 64;
                let mut inline = [(0f64, 0f64, 0u32); ORDER_INLINE];
                let mut spill: Vec<(f64, f64, u32)>;
                let slots: &mut [(f64, f64, u32)] = if entries.len() <= ORDER_INLINE {
                    &mut inline
                } else {
                    spill = vec![(0.0, 0.0, 0); entries.len()];
                    &mut spill
                };
                let mut filled = 0;
                for (idx, e) in entries.iter().enumerate() {
                    let bound = d_q_parent.map(|dqp| (dqp - e.dist_to_parent).abs());
                    if bound.is_some_and(|b| b > radii[ehi0 - 1] + e.radius) {
                        continue;
                    }
                    counter.evals += 1;
                    let d = self.metric.distance(q, self.point(e.rep));
                    slots[filled] = ((d - e.radius).max(0.0), d, idx as u32);
                    filled += 1;
                }
                let order = &mut slots[..filled];
                order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
                for &(_, d, idx) in order.iter() {
                    let e = &entries[idx as usize];
                    let ehi = hi.min(counter.hi_cap());
                    if lo >= ehi {
                        return;
                    }
                    let bound = d_q_parent.map(|dqp| (dqp - e.dist_to_parent).abs());
                    // Covered columns: the whole ball is inside the query.
                    // The per-radius path checks the triangle-bound skip
                    // *before* the covered shortcut, so a column the bound
                    // excludes must contribute 0 even if it looks covered
                    // (only reachable through floating-point rounding when
                    // `e.radius` is ~0, but bit-equality is the contract).
                    let mut nh = ehi;
                    while nh > lo
                        && d + e.radius <= radii[nh - 1]
                        && bound.is_none_or(|b| b <= radii[nh - 1] + e.radius)
                    {
                        nh -= 1;
                    }
                    let mut chi = ehi;
                    if nh < ehi {
                        counter.add_subtree(nh, ehi, e.subtree);
                        counter.bump();
                        chi = nh.min(counter.hi_cap());
                    }
                    // Descend columns: those whose radius can reach the
                    // ball (and that the triangle bound does not exclude).
                    let key = bound.map_or(d, |b| d.max(b));
                    let mut clo = lo;
                    while clo < chi && key > radii[clo] + e.radius {
                        clo += 1;
                    }
                    if clo < chi {
                        self.multi_rec(e.child, q, radii, clo, chi, Some(d), counter);
                    }
                }
            }
        }
    }

    fn ids_rec(
        &self,
        node: u32,
        q: &P,
        r: f64,
        d_q_parent: Option<f64>,
        out: &mut Vec<u32>,
        evals: &mut u64,
    ) {
        match &self.nodes[node as usize] {
            Node::Leaf(entries) => {
                for e in entries {
                    if let Some(dqp) = d_q_parent {
                        if (dqp - e.dist_to_parent).abs() > r {
                            continue;
                        }
                    }
                    *evals += 1;
                    if self.metric.distance(q, self.point(e.id)) <= r {
                        out.push(e.id);
                    }
                }
            }
            Node::Internal(entries) => {
                for e in entries {
                    if let Some(dqp) = d_q_parent {
                        if (dqp - e.dist_to_parent).abs() > r + e.radius {
                            continue;
                        }
                    }
                    *evals += 1;
                    let d = self.metric.distance(q, self.point(e.rep));
                    if d + e.radius <= r {
                        self.collect_subtree(e.child, out);
                    } else if d <= r + e.radius {
                        self.ids_rec(e.child, q, r, Some(d), out, evals);
                    }
                }
            }
        }
    }

    fn collect_subtree(&self, node: u32, out: &mut Vec<u32>) {
        match &self.nodes[node as usize] {
            Node::Leaf(entries) => out.extend(entries.iter().map(|e| e.id)),
            Node::Internal(entries) => {
                for e in entries {
                    self.collect_subtree(e.child, out);
                }
            }
        }
    }
}

impl<P: Send + Sync, M: Metric<P>> RangeIndex<P> for SlimTree<P, M> {
    fn len(&self) -> usize {
        self.len
    }

    fn range_count(&self, q: &P, radius: f64) -> usize {
        if self.len == 0 {
            return 0;
        }
        let mut evals = 0;
        let count = self.count_rec(self.root, q, radius, None, &mut evals);
        self.evals.fetch_add(evals, Ordering::Relaxed);
        count
    }

    /// One descent fills every radius column (see the private `multi_rec`).
    fn multi_range_count(&self, q: &P, radii: &[f64], cap: u32) -> SmallCounts {
        debug_assert!(radii.windows(2).all(|w| w[0] <= w[1]));
        let mut counter = MultiCounter::new(radii.len(), cap);
        if self.len > 0 && !radii.is_empty() {
            self.multi_rec(self.root, q, radii, 0, radii.len(), None, &mut counter);
            self.evals.fetch_add(counter.evals, Ordering::Relaxed);
        }
        counter.finish()
    }

    fn range_ids(&self, q: &P, radius: f64, out: &mut Vec<u32>) {
        if self.len == 0 {
            return;
        }
        let start = out.len();
        let mut evals = 0;
        self.ids_rec(self.root, q, radius, None, out, &mut evals);
        self.evals.fetch_add(evals, Ordering::Relaxed);
        out[start..].sort_unstable();
    }

    fn distance_stats(&self) -> DistanceStats {
        DistanceStats {
            evals: self.evals.load(Ordering::Relaxed),
        }
    }

    fn knn(&self, q: &P, k: usize) -> Vec<Neighbor> {
        if self.len == 0 || k == 0 {
            return Vec::new();
        }
        // Best-first search. `frontier` orders nodes by optimistic distance;
        // `best` keeps the current k nearest as a max-heap.
        let mut evals = 0u64;
        let mut frontier: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(OrdF64, u32)> = BinaryHeap::new();
        frontier.push(Reverse((OrdF64(0.0), self.root)));
        let tau = |best: &BinaryHeap<(OrdF64, u32)>| {
            if best.len() < k {
                f64::INFINITY
            } else {
                best.peek().expect("non-empty").0 .0
            }
        };
        while let Some(Reverse((OrdF64(lb), node))) = frontier.pop() {
            if lb > tau(&best) {
                break;
            }
            match &self.nodes[node as usize] {
                Node::Leaf(entries) => {
                    evals += entries.len() as u64;
                    for e in entries {
                        let d = self.metric.distance(q, self.point(e.id));
                        if d < tau(&best) || (d == tau(&best) && best.len() < k) {
                            best.push((OrdF64(d), e.id));
                            if best.len() > k {
                                best.pop();
                            }
                        }
                    }
                }
                Node::Internal(entries) => {
                    evals += entries.len() as u64;
                    for e in entries {
                        let d = self.metric.distance(q, self.point(e.rep));
                        let lb_child = (d - e.radius).max(0.0);
                        if lb_child <= tau(&best) {
                            frontier.push(Reverse((OrdF64(lb_child), e.child)));
                        }
                    }
                }
            }
        }
        self.evals.fetch_add(evals, Ordering::Relaxed);
        let mut out: Vec<Neighbor> = best
            .into_iter()
            .map(|(OrdF64(dist), id)| Neighbor { id, dist })
            .collect();
        out.sort_by(|a, b| OrdF64(a.dist).cmp(&OrdF64(b.dist)).then(a.id.cmp(&b.id)));
        out
    }

    /// Alg. 1 line 2: the maximum distance between any two child nodes of
    /// the root, here computed as rep-to-rep distance plus both covering
    /// radii (an upper estimate that is safe for the radius grid). A leaf
    /// root yields the exact max pairwise distance.
    fn diameter_estimate(&self) -> f64 {
        match &self.nodes[self.root as usize] {
            Node::Leaf(entries) => {
                let n = entries.len() as u64;
                self.evals
                    .fetch_add(n * n.saturating_sub(1) / 2, Ordering::Relaxed);
                let mut best = 0.0f64;
                for i in 0..entries.len() {
                    for j in (i + 1)..entries.len() {
                        best = best.max(self.dist(entries[i].id, entries[j].id));
                    }
                }
                best
            }
            Node::Internal(entries) => {
                let n = entries.len() as u64;
                self.evals
                    .fetch_add(n * n.saturating_sub(1) / 2, Ordering::Relaxed);
                let mut best = 0.0f64;
                for i in 0..entries.len() {
                    for j in (i + 1)..entries.len() {
                        let d = self.dist(entries[i].rep, entries[j].rep)
                            + entries[i].radius
                            + entries[j].radius;
                        best = best.max(d);
                    }
                }
                if entries.len() == 1 {
                    best = 2.0 * entries[0].radius;
                }
                best
            }
        }
    }
}

/// Cuts the longest edge of a minimum spanning tree over `m` items with
/// distance matrix `dm` (row-major `m × m`), returning a 0/1 side label per
/// item. Prim's algorithm, O(m²); ties break on index order, so the split
/// is deterministic.
fn mst_split(dm: &[f64], m: usize) -> Vec<u8> {
    debug_assert!(m >= 2);
    // Prim from item 0.
    let mut in_tree = vec![false; m];
    let mut best_dist = vec![f64::INFINITY; m];
    let mut best_from = vec![0usize; m];
    let mut edges: Vec<(usize, usize, f64)> = Vec::with_capacity(m - 1);
    in_tree[0] = true;
    for v in 1..m {
        best_dist[v] = dm[v];
        best_from[v] = 0;
    }
    for _ in 1..m {
        let mut next = usize::MAX;
        let mut nd = f64::INFINITY;
        for v in 0..m {
            if !in_tree[v] && best_dist[v] < nd {
                nd = best_dist[v];
                next = v;
            }
        }
        debug_assert_ne!(next, usize::MAX);
        in_tree[next] = true;
        edges.push((best_from[next], next, nd));
        for v in 0..m {
            if !in_tree[v] && dm[next * m + v] < best_dist[v] {
                best_dist[v] = dm[next * m + v];
                best_from[v] = next;
            }
        }
    }
    // Remove the longest MST edge (first of ties) and 2-color the rest.
    let cut = edges
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| OrdF64(a.2).cmp(&OrdF64(b.2)).then(ib.cmp(ia)))
        .map(|(i, _)| i)
        .expect("at least one edge");
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (i, &(u, v, _)) in edges.iter().enumerate() {
        if i != cut {
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    let mut side = vec![u8::MAX; m];
    let mut stack = vec![edges[cut].0];
    side[edges[cut].0] = 0;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if side[v] == u8::MAX {
                side[v] = 0;
                stack.push(v);
            }
        }
    }
    for s in side.iter_mut() {
        if *s == u8::MAX {
            *s = 1;
        }
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_metric::{Euclidean, Levenshtein};

    fn line_points(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64, 0.0]).collect()
    }

    fn tree(pts: &[Vec<f64>], cap: usize) -> SlimTree<Vec<f64>, Euclidean> {
        SlimTree::build(
            pts.to_vec(),
            (0..pts.len() as u32).collect(),
            Euclidean,
            cap,
        )
    }

    #[test]
    fn invariants_hold_after_many_splits() {
        let pts = line_points(500);
        let t = tree(&pts, 4);
        assert_eq!(t.check_invariants(), 500);
    }

    #[test]
    fn range_count_matches_brute_force_on_line() {
        let pts = line_points(200);
        let t = tree(&pts, 8);
        for q in [0usize, 37, 99, 199] {
            for r in [0.0, 0.5, 1.0, 5.0, 50.0, 500.0] {
                let want = pts
                    .iter()
                    .filter(|p| Euclidean.distance(*p, &pts[q]) <= r)
                    .count();
                assert_eq!(t.range_count(&pts[q], r), want, "q={q} r={r}");
            }
        }
    }

    #[test]
    fn range_ids_sorted_and_complete() {
        let pts = line_points(50);
        let t = tree(&pts, 4);
        let mut out = Vec::new();
        t.range_ids(&pts[10], 2.5, &mut out);
        assert_eq!(out, vec![8, 9, 10, 11, 12]);
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = line_points(100);
        let t = tree(&pts, 4);
        let nn = t.knn(&pts[30], 5);
        let ids: Vec<u32> = nn.iter().map(|n| n.id).collect();
        // distance ties (29,31) and (28,32) resolve by id.
        assert_eq!(ids, vec![30, 29, 31, 28, 32]);
        assert_eq!(nn[0].dist, 0.0);
        assert_eq!(nn[4].dist, 2.0);
    }

    #[test]
    fn knn_with_external_query_point() {
        let pts = line_points(10);
        let t = tree(&pts, 4);
        let q = vec![3.4, 0.0];
        let nn = t.knn(&q, 2);
        assert_eq!(nn[0].id, 3);
        assert_eq!(nn[1].id, 4);
    }

    #[test]
    fn duplicate_points_are_all_counted() {
        let pts = vec![vec![1.0, 1.0]; 20];
        let t = tree(&pts, 4);
        assert_eq!(t.range_count(&vec![1.0, 1.0], 0.0), 20);
        assert_eq!(t.check_invariants(), 20);
        assert_eq!(t.diameter_estimate(), 0.0);
    }

    #[test]
    fn empty_tree_queries() {
        let pts: Vec<Vec<f64>> = vec![];
        let t = SlimTree::build(pts.clone(), vec![], Euclidean, 8);
        assert_eq!(t.range_count(&vec![0.0, 0.0], 1.0), 0);
        assert!(t.knn(&vec![0.0, 0.0], 3).is_empty());
        assert_eq!(t.diameter_estimate(), 0.0);
    }

    #[test]
    fn diameter_estimate_bounds() {
        let pts = line_points(300);
        let t = tree(&pts, 8);
        let exact = 299.0;
        let est = t.diameter_estimate();
        // Upper estimate: never below the exact value/1 (it sums covering
        // radii), and not absurdly above.
        assert!(est >= exact * 0.5, "est={est}");
        assert!(est <= exact * 3.0, "est={est}");
    }

    #[test]
    fn works_with_string_metric() {
        let words: Vec<String> = ["cat", "car", "cart", "dog", "dot", "zebra"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let t = SlimTree::build(words.clone(), (0..6).collect(), Levenshtein, 4);
        // Within distance 1 of "cat": cat, car, cart.
        assert_eq!(t.range_count(&"cat".to_string(), 1.0), 3);
        let nn = t.knn(&"dig".to_string(), 2);
        assert_eq!(nn[0].id, 3); // dog (distance 1)
    }

    #[test]
    fn subset_build_reports_original_ids() {
        let pts = line_points(10);
        let t = SlimTree::build(pts.clone(), vec![2, 4, 6, 8], Euclidean, 4);
        let mut out = Vec::new();
        t.range_ids(&pts[4], 2.0, &mut out);
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn mst_split_separates_two_blobs() {
        // 4 items: {0,1} close, {2,3} close, far apart.
        let pos = [0.0f64, 0.5, 10.0, 10.5];
        let m = 4;
        let mut dm = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                dm[i * m + j] = (pos[i] - pos[j]).abs();
            }
        }
        let side = mst_split(&dm, m);
        assert_eq!(side[0], side[1]);
        assert_eq!(side[2], side[3]);
        assert_ne!(side[0], side[2]);
    }
}
