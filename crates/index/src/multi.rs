//! Shared machinery for the single-traversal multi-radius count
//! ([`RangeIndex::multi_range_count`](crate::RangeIndex::multi_range_count)).
//!
//! All four backends share the same accounting scheme. The radius grid is
//! ascending, so a point at distance `d` contributes to every column `k`
//! with `d <= radii[k]` — a *suffix* of the grid. Contributions are
//! therefore recorded in a difference array: adding `c` to columns
//! `[k, hi)` is `diff[k] += c; diff[hi] -= c`, and the per-column counts
//! fall out as prefix sums at the end. The upper bound `hi` is the
//! caller's *window*: columns at or beyond it were already bulk-added by
//! an ancestor whose subtree was wholly covered there (or are no longer
//! needed), so a node only ever accounts for the window it was handed —
//! no column is ever double-counted.
//!
//! The sparse-focused cutoff `cap` turns into a shrinking watermark
//! [`MultiCounter::hi_cap`]: once the running count at some column exceeds
//! `cap`, every later column is guaranteed to end [`OVER`](crate::OVER),
//! so traversals stop refining them (the early exit of Sec. IV-G, applied
//! per query instead of per join).

use crate::{SmallCounts, OVER};

/// Per-query accumulator for a single-traversal multi-radius count.
///
/// Backends narrow their traversal window with their own geometric
/// predicates (kept textually identical to their `range_count` pruning so
/// results match bit for bit) and report contributions here.
pub(crate) struct MultiCounter {
    /// Difference array over columns: `diff[k] += c, diff[hi] -= c` adds
    /// `c` to every column in `[k, hi)`. Length `m + 1`.
    diff: Vec<i64>,
    /// The sparse-focused cutoff `c` of the query.
    cap: u32,
    /// Columns `>= hi_cap` are guaranteed to end [`OVER`]; traversals clamp
    /// their window to it and stop refining those columns.
    hi_cap: usize,
    /// Total contribution mass added so far (points + bulk subtrees,
    /// summed over all columns' first entries). An upper bound on every
    /// running column count, used to amortize [`Self::bump`].
    total: i64,
    /// Skip watermark scans until `total` reaches this: no column can
    /// cross the cap before then.
    next_bump_at: i64,
    /// Point-to-point distance evaluations performed for this query.
    pub evals: u64,
    /// Scratch buffer of the current leaf's point distances, so bucketing
    /// runs as one tight counting pass per window column instead of a
    /// branchy per-point search (leaves never recurse, so one buffer per
    /// query suffices).
    scratch: Vec<f64>,
}

impl MultiCounter {
    /// An accumulator for `m` radii with sparse-focused cutoff `cap`.
    pub fn new(m: usize, cap: u32) -> Self {
        Self {
            diff: vec![0; m + 1],
            cap,
            hi_cap: m,
            total: 0,
            next_bump_at: cap as i64 + 1,
            evals: 0,
            scratch: Vec::new(),
        }
    }

    /// The (cleared) leaf-scan scratch buffer: fill it with the distances
    /// of one leaf's points, then call [`Self::add_leaf`].
    #[inline]
    pub fn scratch_mut(&mut self) -> &mut Vec<f64> {
        self.scratch.clear();
        &mut self.scratch
    }

    /// Buckets the scratch distances into columns `[lo, hi)`, where
    /// `radii_win` is the window's slice of the (ascending) radius grid:
    /// column `lo + j` receives the number of scratch entries
    /// `<= radii_win[j]` — one branch-free counting pass per column, the
    /// same inner loop shape as a per-radius `range_count` leaf scan.
    /// Distances beyond the window's largest radius contribute nothing
    /// (their columns were bulk-added by an ancestor or are past the
    /// watermark). Ends with a watermark [`Self::bump`].
    pub fn add_leaf(&mut self, radii_win: &[f64], lo: usize, hi: usize) {
        debug_assert_eq!(radii_win.len(), hi - lo);
        let mut prev = 0i64;
        for (j, &r) in radii_win.iter().enumerate() {
            let c = self.scratch.iter().filter(|&&d| d <= r).count() as i64;
            // Cumulative counts: column j gets everything within its
            // radius, so only the increment over column j-1 is new.
            let delta = c - prev;
            if delta != 0 {
                self.diff[lo + j] += delta;
                self.diff[hi] -= delta;
            }
            prev = c;
        }
        self.bump();
    }

    /// Current watermark: the window upper bound traversals should clamp to.
    #[inline]
    pub fn hi_cap(&self) -> usize {
        self.hi_cap
    }

    /// Records one point contributing to columns `[k, hi)`.
    #[inline]
    pub fn add_point(&mut self, k: usize, hi: usize) {
        self.diff[k] += 1;
        self.diff[hi] -= 1;
        self.total += 1;
    }

    /// Records a wholly covered subtree of `count` points contributing to
    /// columns `[k, hi)`.
    #[inline]
    pub fn add_subtree(&mut self, k: usize, hi: usize, count: u32) {
        self.diff[k] += count as i64;
        self.diff[hi] -= count as i64;
        self.total += count as i64;
    }

    /// Records a cumulative-count increment for columns `[k, hi)`: used by
    /// leaf scans that count per column, where column `k`'s total includes
    /// everything already counted at column `k - 1`. No-op for zero.
    #[inline]
    pub fn add_column_delta(&mut self, k: usize, hi: usize, delta: i64) {
        debug_assert!(delta >= 0);
        if delta != 0 {
            self.diff[k] += delta;
            self.diff[hi] -= delta;
            self.total += delta;
        }
    }

    /// Re-derives the watermark from the running counts. Called once per
    /// leaf scan or bulk-add, and amortized to `O(1)`: `total` bounds
    /// every running column count from above, so the scan is skipped
    /// entirely until enough new mass has arrived that some column *could*
    /// have crossed the cap.
    #[inline]
    pub fn bump(&mut self) {
        if self.total < self.next_bump_at {
            return;
        }
        let mut running = 0i64;
        let mut max_running = 0i64;
        for k in 0..self.hi_cap {
            running += self.diff[k];
            if running > self.cap as i64 {
                // Running counts only grow, so the final count at column k
                // also exceeds cap: the first crossing is at or before k
                // and every column after it ends OVER.
                self.hi_cap = k + 1;
                return;
            }
            max_running = max_running.max(running);
        }
        // No crossing yet: the best-placed column still needs this much
        // more mass before it can cross, so skip the scans until then.
        self.next_bump_at = self.total + (self.cap as i64 + 1 - max_running);
    }

    /// Prefix-sums the difference array into per-column counts and applies
    /// the sparse-focused mask: entries after the first count exceeding
    /// `cap` become [`OVER`]. Columns at or beyond the final watermark are
    /// never read — the crossing provably happens before them.
    pub fn finish(&self) -> SmallCounts {
        let m = self.diff.len() - 1;
        let mut out = SmallCounts::filled(m, OVER);
        let slots = out.as_mut_slice();
        let mut running = 0i64;
        for (k, d) in self.diff[..m].iter().enumerate() {
            running += d;
            debug_assert!((0..=u32::MAX as i64).contains(&running));
            slots[k] = running as u32;
            if running > self.cap as i64 {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_masks_after_first_crossing() {
        let mut c = MultiCounter::new(4, 2);
        // Counts 1, 3, 5, 7: crossing at column 1.
        c.add_point(0, 4);
        c.add_subtree(1, 4, 2);
        c.add_subtree(2, 4, 2);
        c.add_subtree(3, 4, 2);
        let got = c.finish();
        assert_eq!(got.as_slice(), &[1, 3, OVER, OVER]);
    }

    #[test]
    fn bump_shrinks_watermark_monotonically() {
        let mut c = MultiCounter::new(5, 3);
        assert_eq!(c.hi_cap(), 5);
        c.add_subtree(2, 5, 4); // columns 2.. run at 4 > 3
        c.bump();
        assert_eq!(c.hi_cap(), 3);
        c.add_subtree(0, 3, 10); // columns 0.. now over too
        c.bump();
        assert_eq!(c.hi_cap(), 1);
        // Column 0's exact value is still tracked (it is the crossing);
        // the earlier bulk-add only covered columns [2, 5).
        assert_eq!(c.finish().as_slice(), &[10, OVER, OVER, OVER, OVER]);
    }

    #[test]
    fn uncapped_counts_are_fully_exact() {
        let mut c = MultiCounter::new(3, u32::MAX);
        c.add_point(0, 3);
        c.add_point(2, 3);
        c.bump();
        assert_eq!(c.hi_cap(), 3);
        assert_eq!(c.finish().as_slice(), &[1, 1, 2]);
    }
}
