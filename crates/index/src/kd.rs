//! A kd-tree fast path for main-memory vector data under the Euclidean
//! metric (the paper's footnote 4: "kd-trees for main-memory-based vector
//! data"). Functionally interchangeable with the Slim-tree through
//! [`RangeIndex`], but several times faster on dense low-dimensional
//! vectors because it partitions coordinates instead of computing metric
//! distances during construction.

use crate::multi::MultiCounter;
use crate::{DistanceStats, IndexBuilder, Neighbor, OrdF64, RangeIndex, SmallCounts};
use mccatch_metric::Euclidean;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Builder for [`KdTree`]. Only valid with the [`Euclidean`] metric: the
/// bounding-box pruning arithmetic assumes `L_2`.
#[derive(Debug, Clone, Copy)]
pub struct KdTreeBuilder {
    /// Maximum number of points per leaf.
    pub leaf_capacity: usize,
}

impl Default for KdTreeBuilder {
    fn default() -> Self {
        Self { leaf_capacity: 16 }
    }
}

impl<P: AsRef<[f64]> + Send + Sync> IndexBuilder<P, Euclidean> for KdTreeBuilder {
    type Index = KdTree<P>;

    fn build(&self, points: Arc<[P]>, ids: Vec<u32>, _metric: Arc<Euclidean>) -> Self::Index {
        KdTree::build(points, ids, self.leaf_capacity)
    }

    fn backend_name(&self) -> &'static str {
        "kd"
    }
}

#[derive(Debug)]
struct KdNode {
    /// Axis-aligned bounding box of the points below this node.
    bbox: Box<[f64]>, // interleaved [min0, max0, min1, max1, ...]
    /// Number of points below this node.
    count: u32,
    kind: KdKind,
}

#[derive(Debug)]
enum KdKind {
    /// Range into the permuted id array.
    Leaf {
        start: u32,
        end: u32,
    },
    Split {
        left: u32,
        right: u32,
    },
}

/// Median-split kd-tree over `points[ids]`; owns an `Arc` handle to the
/// dataset, so it has no lifetime.
#[derive(Debug)]
pub struct KdTree<P> {
    points: Arc<[P]>,
    ids: Vec<u32>,
    nodes: Vec<KdNode>,
    dim: usize,
    /// Point-distance evaluations performed by queries (construction
    /// partitions coordinates and computes none). Relaxed ordering: read
    /// only after joins complete; queries batch their updates.
    evals: AtomicU64,
}

impl<P: AsRef<[f64]>> KdTree<P> {
    /// Builds the tree. Splits the widest bounding-box dimension at the
    /// median; wholly deterministic.
    pub fn build(points: impl Into<Arc<[P]>>, mut ids: Vec<u32>, leaf_capacity: usize) -> Self {
        let points = points.into();
        let leaf_capacity = leaf_capacity.max(1);
        let dim = points.first().map_or(0, |p| p.as_ref().len());
        let mut tree = Self {
            points,
            ids: Vec::new(),
            nodes: Vec::new(),
            dim,
            evals: AtomicU64::new(0),
        };
        if !ids.is_empty() {
            let n = ids.len();
            tree.build_rec(&mut ids, 0, n, leaf_capacity);
            tree.ids = ids;
        }
        tree
    }

    /// Builds the subtree over `ids[start..end]`, returning its node index.
    fn build_rec(&mut self, ids: &mut [u32], start: usize, end: usize, cap: usize) -> u32 {
        let slice = &ids[start..end];
        let mut bbox = vec![0.0f64; self.dim * 2];
        for d in 0..self.dim {
            bbox[2 * d] = f64::INFINITY;
            bbox[2 * d + 1] = f64::NEG_INFINITY;
        }
        for &id in slice {
            let c = self.points[id as usize].as_ref();
            for d in 0..self.dim {
                bbox[2 * d] = bbox[2 * d].min(c[d]);
                bbox[2 * d + 1] = bbox[2 * d + 1].max(c[d]);
            }
        }
        let count = (end - start) as u32;
        if end - start <= cap {
            let idx = self.nodes.len() as u32;
            self.nodes.push(KdNode {
                bbox: bbox.into_boxed_slice(),
                count,
                kind: KdKind::Leaf {
                    start: start as u32,
                    end: end as u32,
                },
            });
            return idx;
        }
        // Split the widest dimension at the median.
        let split_dim = (0..self.dim)
            .max_by(|&a, &b| {
                OrdF64(bbox[2 * a + 1] - bbox[2 * a]).cmp(&OrdF64(bbox[2 * b + 1] - bbox[2 * b]))
            })
            .unwrap_or(0);
        let mid = (end - start) / 2;
        let points = Arc::clone(&self.points);
        ids[start..end].select_nth_unstable_by(mid, |&a, &b| {
            OrdF64(points[a as usize].as_ref()[split_dim])
                .cmp(&OrdF64(points[b as usize].as_ref()[split_dim]))
                .then(a.cmp(&b))
        });
        // Reserve this node's slot before recursing so parents precede children.
        let idx = self.nodes.len() as u32;
        self.nodes.push(KdNode {
            bbox: bbox.into_boxed_slice(),
            count,
            kind: KdKind::Leaf { start: 0, end: 0 }, // patched below
        });
        let left = self.build_rec(ids, start, start + mid, cap);
        let right = self.build_rec(ids, start + mid, end, cap);
        self.nodes[idx as usize].kind = KdKind::Split { left, right };
        idx
    }

    /// Squared distance from `q` to the nearest point of `bbox` (0 inside).
    fn min_dist2(&self, q: &[f64], bbox: &[f64]) -> f64 {
        let mut s = 0.0;
        for d in 0..self.dim {
            let (lo, hi) = (bbox[2 * d], bbox[2 * d + 1]);
            let v = if q[d] < lo {
                lo - q[d]
            } else if q[d] > hi {
                q[d] - hi
            } else {
                0.0
            };
            s += v * v;
        }
        s
    }

    /// Squared distance from `q` to the farthest corner of `bbox`.
    fn max_dist2(&self, q: &[f64], bbox: &[f64]) -> f64 {
        let mut s = 0.0;
        for d in 0..self.dim {
            let v = (q[d] - bbox[2 * d])
                .abs()
                .max((q[d] - bbox[2 * d + 1]).abs());
            s += v * v;
        }
        s
    }

    #[inline]
    fn dist2(&self, q: &[f64], id: u32) -> f64 {
        let c = self.points[id as usize].as_ref();
        q.iter()
            .zip(c)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    fn count_rec(&self, node: u32, q: &[f64], r2: f64, evals: &mut u64) -> usize {
        let n = &self.nodes[node as usize];
        let min2 = self.min_dist2(q, &n.bbox);
        if min2 > r2 {
            return 0;
        }
        if self.max_dist2(q, &n.bbox) <= r2 {
            // Covered-subtree shortcut (count-only principle).
            return n.count as usize;
        }
        match n.kind {
            KdKind::Leaf { start, end } => {
                *evals += (end - start) as u64;
                self.ids[start as usize..end as usize]
                    .iter()
                    .filter(|&&id| self.dist2(q, id) <= r2)
                    .count()
            }
            KdKind::Split { left, right } => {
                self.count_rec(left, q, r2, evals) + self.count_rec(right, q, r2, evals)
            }
        }
    }

    /// Single-traversal multi-radius count over the window `[lo, hi)` of
    /// squared radii `r2` (ascending). The window narrows as the descent
    /// proves columns resolved: columns whose radius cannot reach this
    /// bounding box contribute nothing (advance `lo`), columns whose
    /// radius covers the whole box take the subtree cardinality in one
    /// bulk-add (shrink `hi`), and columns at or past the counter's
    /// watermark can only end OVER (clamp `hi`). The pruning predicates
    /// are textually the same as [`Self::count_rec`]'s, so the counts
    /// match the per-radius path bit for bit.
    /// `min2` is this node's squared bounding-box distance, computed by
    /// the parent (for child ordering) and passed down so each box is
    /// evaluated exactly once.
    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn multi_rec(
        &self,
        node: u32,
        q: &[f64],
        r2: &[f64],
        mut lo: usize,
        mut hi: usize,
        min2: f64,
        counter: &mut MultiCounter,
    ) {
        hi = hi.min(counter.hi_cap());
        while lo < hi && min2 > r2[lo] {
            lo += 1;
        }
        if lo >= hi {
            return;
        }
        let n = &self.nodes[node as usize];
        let max2 = self.max_dist2(q, &n.bbox);
        let mut nh = hi;
        while nh > lo && max2 <= r2[nh - 1] {
            nh -= 1;
        }
        if nh < hi {
            counter.add_subtree(nh, hi, n.count);
            counter.bump();
            hi = nh.min(counter.hi_cap());
            if lo >= hi {
                return;
            }
        }
        match n.kind {
            KdKind::Leaf { start, end } => {
                // One fused scan per window column — the same tight,
                // store-free loop shape as the per-radius leaf scan (point
                // distances here are cheap coordinate arithmetic, so
                // recomputing beats buffering). Counts are cumulative in
                // the column radius, so only the increment is new.
                let ids = &self.ids[start as usize..end as usize];
                let mut prev = 0i64;
                for (k, &rk) in r2.iter().enumerate().take(hi).skip(lo) {
                    counter.evals += ids.len() as u64;
                    let c = ids.iter().filter(|&&id| self.dist2(q, id) <= rk).count() as i64;
                    counter.add_column_delta(k, hi, c - prev);
                    prev = c;
                    if c == ids.len() as i64 {
                        // Every point counted: later columns add nothing.
                        break;
                    }
                }
                counter.bump();
            }
            KdKind::Split { left, right } => {
                // Nearest child first: the query's dense neighborhood is
                // what pushes the running counts past the cap, so visiting
                // it early collapses the window to the small radii before
                // the expensive far subtrees are reached.
                let dl = self.min_dist2(q, &self.nodes[left as usize].bbox);
                let dr = self.min_dist2(q, &self.nodes[right as usize].bbox);
                let ((near, near2), (far, far2)) = if dl <= dr {
                    ((left, dl), (right, dr))
                } else {
                    ((right, dr), (left, dl))
                };
                self.multi_rec(near, q, r2, lo, hi, near2, counter);
                self.multi_rec(far, q, r2, lo, hi, far2, counter);
            }
        }
    }

    fn ids_rec(&self, node: u32, q: &[f64], r2: f64, out: &mut Vec<u32>, evals: &mut u64) {
        let n = &self.nodes[node as usize];
        if self.min_dist2(q, &n.bbox) > r2 {
            return;
        }
        if self.max_dist2(q, &n.bbox) <= r2 {
            self.collect(node, out);
            return;
        }
        match n.kind {
            KdKind::Leaf { start, end } => {
                *evals += (end - start) as u64;
                out.extend(
                    self.ids[start as usize..end as usize]
                        .iter()
                        .copied()
                        .filter(|&id| self.dist2(q, id) <= r2),
                )
            }
            KdKind::Split { left, right } => {
                self.ids_rec(left, q, r2, out, evals);
                self.ids_rec(right, q, r2, out, evals);
            }
        }
    }

    fn collect(&self, node: u32, out: &mut Vec<u32>) {
        match self.nodes[node as usize].kind {
            KdKind::Leaf { start, end } => {
                out.extend_from_slice(&self.ids[start as usize..end as usize])
            }
            KdKind::Split { left, right } => {
                self.collect(left, out);
                self.collect(right, out);
            }
        }
    }
}

impl<P: AsRef<[f64]> + Send + Sync> RangeIndex<P> for KdTree<P> {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn range_count(&self, q: &P, radius: f64) -> usize {
        if self.ids.is_empty() {
            return 0;
        }
        let mut evals = 0;
        let count = self.count_rec(0, q.as_ref(), radius * radius, &mut evals);
        self.evals.fetch_add(evals, Ordering::Relaxed);
        count
    }

    /// One descent fills every radius column (see the private `multi_rec`).
    fn multi_range_count(&self, q: &P, radii: &[f64], cap: u32) -> SmallCounts {
        debug_assert!(radii.windows(2).all(|w| w[0] <= w[1]));
        let mut counter = MultiCounter::new(radii.len(), cap);
        if !self.ids.is_empty() && !radii.is_empty() {
            let q = q.as_ref();
            let r2: Vec<f64> = radii.iter().map(|&r| r * r).collect();
            let min2 = self.min_dist2(q, &self.nodes[0].bbox);
            self.multi_rec(0, q, &r2, 0, radii.len(), min2, &mut counter);
            self.evals.fetch_add(counter.evals, Ordering::Relaxed);
        }
        counter.finish()
    }

    fn range_ids(&self, q: &P, radius: f64, out: &mut Vec<u32>) {
        if self.ids.is_empty() {
            return;
        }
        let start = out.len();
        let mut evals = 0;
        self.ids_rec(0, q.as_ref(), radius * radius, out, &mut evals);
        self.evals.fetch_add(evals, Ordering::Relaxed);
        out[start..].sort_unstable();
    }

    fn distance_stats(&self) -> DistanceStats {
        DistanceStats {
            evals: self.evals.load(Ordering::Relaxed),
        }
    }

    fn knn(&self, q: &P, k: usize) -> Vec<Neighbor> {
        if self.ids.is_empty() || k == 0 {
            return Vec::new();
        }
        let q = q.as_ref();
        let mut evals = 0u64;
        let mut frontier: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(OrdF64, u32)> = BinaryHeap::new();
        frontier.push(Reverse((OrdF64(0.0), 0)));
        while let Some(Reverse((OrdF64(lb2), node))) = frontier.pop() {
            let tau2 = if best.len() < k {
                f64::INFINITY
            } else {
                best.peek().expect("non-empty").0 .0
            };
            if lb2 > tau2 {
                break;
            }
            let n = &self.nodes[node as usize];
            match n.kind {
                KdKind::Leaf { start, end } => {
                    evals += (end - start) as u64;
                    for &id in &self.ids[start as usize..end as usize] {
                        let d2 = self.dist2(q, id);
                        let tau2 = if best.len() < k {
                            f64::INFINITY
                        } else {
                            best.peek().expect("non-empty").0 .0
                        };
                        if d2 < tau2 || (d2 == tau2 && best.len() < k) {
                            best.push((OrdF64(d2), id));
                            if best.len() > k {
                                best.pop();
                            }
                        }
                    }
                }
                KdKind::Split { left, right } => {
                    for child in [left, right] {
                        let lb2 = self.min_dist2(q, &self.nodes[child as usize].bbox);
                        if best.len() < k || lb2 <= best.peek().expect("non-empty").0 .0 {
                            frontier.push(Reverse((OrdF64(lb2), child)));
                        }
                    }
                }
            }
        }
        self.evals.fetch_add(evals, Ordering::Relaxed);
        let mut out: Vec<Neighbor> = best
            .into_iter()
            .map(|(OrdF64(d2), id)| Neighbor {
                id,
                dist: d2.sqrt(),
            })
            .collect();
        out.sort_by(|a, b| OrdF64(a.dist).cmp(&OrdF64(b.dist)).then(a.id.cmp(&b.id)));
        out
    }

    /// Diameter of the root bounding box — for vector data this is the
    /// natural analogue of the paper's "max distance between root children".
    fn diameter_estimate(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let bbox = &self.nodes[0].bbox;
        (0..self.dim)
            .map(|d| {
                let w = bbox[2 * d + 1] - bbox[2 * d];
                w * w
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_metric::{Euclidean, Metric};

    fn grid(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .flat_map(|x| (0..n).map(move |y| vec![x as f64, y as f64]))
            .collect()
    }

    fn kd(pts: &[Vec<f64>]) -> KdTree<Vec<f64>> {
        KdTree::build(pts.to_vec(), (0..pts.len() as u32).collect(), 4)
    }

    #[test]
    fn range_count_matches_brute_force() {
        let pts = grid(12);
        let t = kd(&pts);
        for q in [0usize, 17, 77, 143] {
            for r in [0.0, 1.0, 1.5, 3.2, 20.0] {
                let want = pts
                    .iter()
                    .filter(|p| Euclidean.distance(*p, &pts[q]) <= r)
                    .count();
                assert_eq!(t.range_count(&pts[q], r), want, "q={q} r={r}");
            }
        }
    }

    #[test]
    fn range_ids_sorted() {
        let pts = grid(5);
        let t = kd(&pts);
        let mut out = Vec::new();
        t.range_ids(&vec![0.0, 0.0], 1.0, &mut out);
        assert_eq!(out, vec![0, 1, 5]);
    }

    #[test]
    fn knn_matches_brute_force_ordering() {
        let pts = grid(6);
        let t = kd(&pts);
        let nn = t.knn(&vec![2.2, 3.1], 4);
        // Brute force.
        let mut all: Vec<(f64, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (Euclidean.distance(p, &vec![2.2, 3.1]), i as u32))
            .collect();
        all.sort_by(|a, b| OrdF64(a.0).cmp(&OrdF64(b.0)).then(a.1.cmp(&b.1)));
        for (got, want) in nn.iter().zip(&all) {
            assert_eq!(got.id, want.1);
            assert!((got.dist - want.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diameter_is_bbox_diagonal() {
        let pts = grid(4); // 0..3 in both dims
        let t = kd(&pts);
        assert!((t.diameter_estimate() - (18.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_tree() {
        let pts: Vec<Vec<f64>> = vec![];
        let t = KdTree::build(pts.clone(), vec![], 4);
        assert_eq!(t.range_count(&vec![0.0, 0.0], 1.0), 0);
        assert_eq!(t.diameter_estimate(), 0.0);
        assert!(t.knn(&vec![0.0, 0.0], 1).is_empty());
    }

    #[test]
    fn subset_ids_preserved() {
        let pts = grid(4);
        let t = KdTree::build(pts.clone(), vec![5, 10, 15], 2);
        let mut out = Vec::new();
        t.range_ids(&pts[10], 0.0, &mut out);
        assert_eq!(out, vec![10]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_counted() {
        let pts = vec![vec![3.0, 3.0]; 9];
        let t = kd(&pts);
        assert_eq!(t.range_count(&vec![3.0, 3.0], 0.0), 9);
    }

    #[test]
    fn high_dimensional_counts() {
        // 20-dim points on a diagonal.
        let pts: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64; 20]).collect();
        let t = KdTree::build(pts.clone(), (0..64).collect(), 4);
        // Neighbor at diagonal step 1 is at distance sqrt(20).
        let r = (20.0f64).sqrt() + 1e-9;
        assert_eq!(t.range_count(&pts[10], r), 3);
    }
}
