//! String metrics: Levenshtein ("L-Edit") and Soundex-coded distance.
//!
//! The paper analyses last names with "the L-Edit distance" and suggests
//! "string-editing or soundex encoding distance" for strings in general
//! (Sec. V). Both are provided here. Levenshtein operates on Unicode scalar
//! values so accented non-English surnames are handled correctly.

use crate::{universal_code_length, Metric};

/// The Levenshtein edit distance (unit costs for insertion, deletion and
/// substitution) — the "L-Edit" distance of the paper.
///
/// This is a true metric on strings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Levenshtein;

/// Core two-row DP over arbitrary symbol slices, shared by [`Levenshtein`]
/// and [`SoundexDistance`] and by the fingerprint ridge sequences in
/// `mccatch-data`.
pub(crate) fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the shorter sequence as the row to halve memory traffic.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost_sub = prev_diag + usize::from(lc != sc);
            prev_diag = row[j + 1];
            row[j + 1] = cost_sub.min(row[j] + 1).min(prev_diag + 1);
        }
    }
    row[short.len()]
}

impl Levenshtein {
    /// Edit distance between two strings as an integer.
    pub fn edit_distance(a: &str, b: &str) -> usize {
        // Fast path: byte-identical strings.
        if a == b {
            return 0;
        }
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        edit_distance(&av, &bv)
    }
}

impl Metric<String> for Levenshtein {
    #[inline]
    fn distance(&self, a: &String, b: &String) -> f64 {
        Levenshtein::edit_distance(a, b) as f64
    }

    /// Def. 7: for words under edit distance, `t` is the cost of describing
    /// (i) which of the three operations to perform, (ii) the new character,
    /// and (iii) the position: `⟨3⟩ + ⟨#distinct chars⟩ + ⟨#chars longest word⟩`.
    fn transformation_cost(&self, data: &[String]) -> f64 {
        let mut chars: Vec<char> = data.iter().flat_map(|s| s.chars()).collect();
        chars.sort_unstable();
        chars.dedup();
        let distinct = chars.len().max(1) as u64;
        let longest = data
            .iter()
            .map(|s| s.chars().count())
            .max()
            .unwrap_or(1)
            .max(1) as u64;
        universal_code_length(3) + universal_code_length(distinct) + universal_code_length(longest)
    }
}

/// American Soundex code of a word: an initial letter followed by three
/// digits, e.g. `soundex("Robert") == "R163"`.
///
/// Non-ASCII-alphabetic characters are skipped; the empty input produces
/// `"0000"` so that distances remain defined.
pub fn soundex(word: &str) -> [u8; 4] {
    fn code(c: u8) -> u8 {
        match c {
            b'b' | b'f' | b'p' | b'v' => b'1',
            b'c' | b'g' | b'j' | b'k' | b'q' | b's' | b'x' | b'z' => b'2',
            b'd' | b't' => b'3',
            b'l' => b'4',
            b'm' | b'n' => b'5',
            b'r' => b'6',
            // a e i o u y h w -> 0 (not coded)
            _ => b'0',
        }
    }
    let letters: Vec<u8> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase() as u8)
        .collect();
    let Some((&first, rest)) = letters.split_first() else {
        return *b"0000";
    };
    let mut out = [b'0'; 4];
    out[0] = first.to_ascii_uppercase();
    let mut last_code = code(first);
    let mut n = 1;
    for &c in rest {
        let k = code(c);
        if k != b'0' && k != last_code && n < 4 {
            out[n] = k;
            n += 1;
        }
        // 'h' and 'w' are transparent: consonants separated by them count as
        // adjacent. Vowels reset the run.
        if c != b'h' && c != b'w' {
            last_code = k;
        }
    }
    out
}

/// Distance between the Soundex codes of two words (edit distance on the
/// 4-character codes). A *pseudometric*: phonetically identical words are at
/// distance zero. The triangle inequality still holds (it is a metric on
/// codes composed with the encoding function), so metric trees remain
/// correct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoundexDistance;

impl Metric<String> for SoundexDistance {
    #[inline]
    fn distance(&self, a: &String, b: &String) -> f64 {
        let (ca, cb) = (soundex(a), soundex(b));
        edit_distance(&ca, &cb) as f64
    }

    /// Codes are 4 symbols over {letter, 7 digits}: ⟨3⟩ + ⟨33⟩ + ⟨4⟩.
    fn transformation_cost(&self, _data: &[String]) -> f64 {
        universal_code_length(3) + universal_code_length(26 + 7) + universal_code_length(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> String {
        x.to_owned()
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(Levenshtein::edit_distance("kitten", "sitting"), 3);
        assert_eq!(Levenshtein::edit_distance("flaw", "lawn"), 2);
        assert_eq!(Levenshtein::edit_distance("", ""), 0);
        assert_eq!(Levenshtein::edit_distance("abc", ""), 3);
        assert_eq!(Levenshtein::edit_distance("", "abc"), 3);
        assert_eq!(Levenshtein::edit_distance("same", "same"), 0);
    }

    #[test]
    fn levenshtein_unicode_counts_scalars_not_bytes() {
        // 'ø' is 2 bytes in UTF-8 but one substitution.
        assert_eq!(Levenshtein::edit_distance("søren", "soren"), 1);
        assert_eq!(Levenshtein::edit_distance("müller", "mueller"), 2);
    }

    #[test]
    fn levenshtein_symmetry() {
        let pairs = [("smith", "smythe"), ("garcía", "garcia"), ("o", "oo")];
        for (a, b) in pairs {
            assert_eq!(
                Levenshtein::edit_distance(a, b),
                Levenshtein::edit_distance(b, a)
            );
        }
    }

    #[test]
    fn levenshtein_triangle_spot_checks() {
        let words = ["smith", "smyth", "schmidt", "smit", ""];
        for a in words {
            for b in words {
                for c in words {
                    let ab = Levenshtein::edit_distance(a, b);
                    let bc = Levenshtein::edit_distance(b, c);
                    let ac = Levenshtein::edit_distance(a, c);
                    assert!(ac <= ab + bc, "triangle violated: {a} {b} {c}");
                }
            }
        }
    }

    #[test]
    fn soundex_classic_examples() {
        assert_eq!(&soundex("Robert"), b"R163");
        assert_eq!(&soundex("Rupert"), b"R163");
        assert_eq!(&soundex("Tymczak"), b"T522");
        assert_eq!(&soundex("Pfister"), b"P236");
        assert_eq!(&soundex("Honeyman"), b"H555");
        assert_eq!(&soundex("Ashcraft"), b"A261"); // h/w transparency
    }

    #[test]
    fn soundex_empty_and_nonalpha() {
        assert_eq!(&soundex(""), b"0000");
        assert_eq!(&soundex("123"), b"0000");
    }

    #[test]
    fn soundex_distance_zero_for_homophones() {
        assert_eq!(SoundexDistance.distance(&s("Robert"), &s("Rupert")), 0.0);
    }

    #[test]
    fn soundex_distance_positive_for_different_sounds() {
        assert!(SoundexDistance.distance(&s("Robert"), &s("Nakamura")) > 0.0);
    }

    #[test]
    fn transformation_cost_uses_dataset_stats() {
        let data = vec![s("ab"), s("abcd")];
        // distinct chars = 4, longest = 4 => <3> + <4> + <4> = 2.585 + 3 + 3
        let want = universal_code_length(3) + 2.0 * universal_code_length(4);
        assert!((Levenshtein.transformation_cost(&data) - want).abs() < 1e-12);
    }
}
