//! Additional metrics for common nondimensional data shapes: Hamming
//! distance on fixed-length codes, Jaccard distance on sets, and angular
//! distance on rays.
//!
//! These broaden goal G1 ("work with any metric dataset") beyond the three
//! modalities the paper evaluates: categorical codes, market-basket /
//! token sets, and direction-of-arrival data all come up in the fraud and
//! intrusion settings that motivate microcluster detection.

use crate::{universal_code_length, Metric};

/// Hamming distance between equal-length sequences: the number of
/// positions where they differ. A true metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hamming;

impl Hamming {
    /// Positions where `a` and `b` differ.
    ///
    /// # Panics
    /// Panics if the lengths differ (Hamming is undefined there; use
    /// [`crate::Levenshtein`] for variable-length data).
    pub fn count<T: PartialEq>(a: &[T], b: &[T]) -> usize {
        assert_eq!(a.len(), b.len(), "Hamming needs equal lengths");
        a.iter().zip(b).filter(|(x, y)| x != y).count()
    }
}

impl Metric<Vec<u8>> for Hamming {
    #[inline]
    fn distance(&self, a: &Vec<u8>, b: &Vec<u8>) -> f64 {
        Hamming::count(a, b) as f64
    }

    /// One unit of distance = one substituted symbol: the symbol plus its
    /// position, `⟨#alphabet⟩ + ⟨len⟩`.
    fn transformation_cost(&self, data: &[Vec<u8>]) -> f64 {
        let mut symbols: Vec<u8> = data.iter().flatten().copied().collect();
        symbols.sort_unstable();
        symbols.dedup();
        let len = data.first().map_or(1, Vec::len).max(1) as u64;
        universal_code_length(symbols.len().max(1) as u64) + universal_code_length(len)
    }
}

/// Jaccard distance between sets: `1 − |A∩B| / |A∪B|`. A true metric on
/// finite sets (Steinhaus transform of the symmetric difference); two
/// empty sets are at distance 0.
///
/// Elements must be stored *sorted and deduplicated* — construct inputs
/// with [`jaccard_set`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Jaccard;

/// Normalizes a collection into the sorted-unique form [`Jaccard`] expects.
pub fn jaccard_set(items: impl IntoIterator<Item = u32>) -> Vec<u32> {
    let mut v: Vec<u32> = items.into_iter().collect();
    v.sort_unstable();
    v.dedup();
    v
}

impl Metric<Vec<u32>> for Jaccard {
    fn distance(&self, a: &Vec<u32>, b: &Vec<u32>) -> f64 {
        debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "unsorted Jaccard set");
        debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "unsorted Jaccard set");
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        // Sorted-merge intersection count.
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        1.0 - inter as f64 / union as f64
    }

    /// One unit of Jaccard distance swaps the whole set in the worst case;
    /// describing an element change needs `⟨#universe⟩` bits, scaled by a
    /// typical set size.
    fn transformation_cost(&self, data: &[Vec<u32>]) -> f64 {
        let universe = data
            .iter()
            .flat_map(|s| s.iter().copied())
            .max()
            .map_or(1, |m| m as u64 + 1);
        let avg_len = if data.is_empty() {
            1.0
        } else {
            (data.iter().map(Vec::len).sum::<usize>() as f64 / data.len() as f64).max(1.0)
        };
        universal_code_length(universe.max(1)) * avg_len
    }
}

/// Angular distance between nonzero vectors: the angle between them in
/// radians (`arccos` of the cosine similarity). A true metric on rays
/// (it is the geodesic distance on the unit sphere after normalization).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Angular;

impl<P: AsRef<[f64]> + Sync> Metric<P> for Angular {
    fn distance(&self, a: &P, b: &P) -> f64 {
        let (a, b) = (a.as_ref(), b.as_ref());
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            // A zero vector has no direction; treat it as identical to
            // another zero vector and maximally distant otherwise.
            return if na == nb {
                0.0
            } else {
                std::f64::consts::FRAC_PI_2
            };
        }
        (dot / (na * nb)).clamp(-1.0, 1.0).acos()
    }

    fn transformation_cost(&self, data: &[P]) -> f64 {
        data.first().map_or(1.0, |p| p.as_ref().len().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_known_values() {
        assert_eq!(Hamming::count(b"karolin", b"kathrin"), 3);
        assert_eq!(Hamming::count(b"", b""), 0);
        assert_eq!(Hamming.distance(&b"abc".to_vec(), &b"abd".to_vec()), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_rejects_unequal_lengths() {
        let _ = Hamming::count(b"ab", b"abc");
    }

    #[test]
    fn jaccard_known_values() {
        let a = jaccard_set([1, 2, 3]);
        let b = jaccard_set([2, 3, 4]);
        // intersection 2, union 4 -> 0.5.
        assert!((Jaccard.distance(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(Jaccard.distance(&a, &a), 0.0);
        let empty = jaccard_set([]);
        assert_eq!(Jaccard.distance(&empty, &empty), 0.0);
        assert_eq!(Jaccard.distance(&a, &empty), 1.0);
    }

    #[test]
    fn jaccard_set_normalizes() {
        assert_eq!(jaccard_set([3, 1, 3, 2, 1]), vec![1, 2, 3]);
    }

    #[test]
    fn jaccard_triangle_spot_checks() {
        let sets: Vec<Vec<u32>> = vec![
            jaccard_set([1, 2]),
            jaccard_set([2, 3]),
            jaccard_set([1, 2, 3, 4]),
            jaccard_set([5]),
            jaccard_set([]),
        ];
        for a in &sets {
            for b in &sets {
                for c in &sets {
                    let ab = Jaccard.distance(a, b);
                    let bc = Jaccard.distance(b, c);
                    let ac = Jaccard.distance(a, c);
                    assert!(ac <= ab + bc + 1e-12);
                }
            }
        }
    }

    #[test]
    fn angular_known_values() {
        let x = vec![1.0, 0.0];
        let y = vec![0.0, 1.0];
        let neg = vec![-1.0, 0.0];
        assert!((Angular.distance(&x, &y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Angular.distance(&x, &neg) - std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(Angular.distance(&x, &x), 0.0);
        // Scale invariance: rays, not points.
        let x10 = vec![10.0, 0.0];
        assert_eq!(Angular.distance(&x, &x10), 0.0);
    }

    #[test]
    fn angular_zero_vectors() {
        let z = vec![0.0, 0.0];
        let x = vec![1.0, 0.0];
        assert_eq!(Angular.distance(&z, &z), 0.0);
        assert!(Angular.distance(&z, &x) > 0.0);
    }
}
