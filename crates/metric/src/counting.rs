//! A metric decorator that counts distance evaluations.
//!
//! Lemma 1 bounds MCCATCH's runtime by the cost of its spatial joins, which
//! is proportional to the number of distance computations. Wall-clock
//! benchmarks are noisy; counting distance calls gives a deterministic,
//! machine-independent measurement that the harness uses to check the
//! `O(n^(2-1/u))` growth curve of Fig. 7.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::Metric;

/// Wraps a metric and counts how many times `distance` is invoked.
///
/// The counter is atomic so parallel joins can share one wrapper; relaxed
/// ordering suffices because the count is only read after joins complete.
#[derive(Debug, Default)]
pub struct CountingMetric<M> {
    inner: M,
    calls: AtomicU64,
}

impl<M> CountingMetric<M> {
    /// Wraps `inner` with a zeroed counter.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of distance evaluations since construction or the last
    /// [`reset`](Self::reset).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }

    /// Consumes the wrapper, returning the inner metric.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<P, M: Metric<P>> Metric<P> for CountingMetric<M> {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.distance(a, b)
    }

    fn transformation_cost(&self, data: &[P]) -> f64 {
        self.inner.transformation_cost(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Euclidean;

    #[test]
    fn counts_calls_and_resets() {
        let m = CountingMetric::new(Euclidean);
        let a = vec![0.0, 0.0];
        let b = vec![1.0, 1.0];
        assert_eq!(m.calls(), 0);
        let _ = m.distance(&a, &b);
        let _ = m.distance(&a, &b);
        assert_eq!(m.calls(), 2);
        m.reset();
        assert_eq!(m.calls(), 0);
    }

    #[test]
    fn preserves_distances_and_cost() {
        let m = CountingMetric::new(Euclidean);
        let a = vec![0.0, 0.0];
        let b = vec![3.0, 4.0];
        assert_eq!(m.distance(&a, &b), 5.0);
        let data = vec![a, b];
        assert_eq!(m.transformation_cost(&data), 2.0);
    }
}
