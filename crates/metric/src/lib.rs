//! Distance functions and metric-space abstractions for MCCATCH.
//!
//! MCCATCH (ICDE 2024) works on *any* metric dataset: the algorithm never
//! touches coordinates, only pairwise distances. This crate provides the
//! [`Metric`] trait that the rest of the workspace builds on, together with
//! concrete metrics for the three data modalities evaluated in the paper:
//!
//! * **Vectors** — [`Euclidean`], [`Manhattan`], [`Chebyshev`] and general
//!   [`Minkowski`] (`L_p`) distances (Sec. V: "for vector data, we use the
//!   Euclidean distance (but any other Lp metric would work)").
//! * **Strings** — [`Levenshtein`] ("L-Edit") and [`SoundexDistance`]
//!   (Sec. V: "string-editing or soundex encoding distance for strings").
//! * **Trees** — [`TreeEditDistance`] (Zhang–Shasha) over [`OrderedTree`]s,
//!   standing in for the paper's skeleton-graph edit distance.
//! * **Codes, sets and rays** — [`Hamming`], [`Jaccard`] and [`Angular`],
//!   for categorical codes, token sets and directional data.
//!
//! Each metric also knows its *transformation cost* `t` (Def. 7): the number
//! of bits needed to describe how to transform one element into another
//! element that is one unit of distance away. The cost feeds the
//! compression-based anomaly scores of `mccatch-core`.
//!
//! Finally, [`CountingMetric`] wraps any metric and counts distance
//! evaluations, which the benchmark harness uses to verify the subquadratic
//! behaviour promised by Lemma 1 independently of wall-clock noise.

#![deny(missing_docs)]

mod counting;
mod discrete;
mod string;
mod tree;
mod vector;

pub use counting::CountingMetric;
pub use discrete::{jaccard_set, Angular, Hamming, Jaccard};
pub use string::{soundex, Levenshtein, SoundexDistance};
pub use tree::{OrderedTree, TreeEditDistance, TreeNode};
pub use vector::{Chebyshev, Euclidean, Manhattan, Minkowski};

/// A distance function over elements of type `P`.
///
/// Implementations must satisfy the metric (or at least pseudometric) axioms:
/// non-negativity, symmetry, `d(x, x) = 0`, and the triangle inequality.
/// The triangle inequality is load-bearing: the Slim-tree in `mccatch-index`
/// prunes subtrees with it, and a non-metric distance silently produces
/// wrong neighbor counts.
///
/// `Send + Sync` is required so neighbor counting can be parallelized and
/// so fitted models that own their metric can move across threads.
pub trait Metric<P>: Send + Sync {
    /// The distance between `a` and `b`.
    fn distance(&self, a: &P, b: &P) -> f64;

    /// The transformation cost `t` of Def. 7: the cost in bits to transform
    /// an element into another element that is one unit of distance away.
    ///
    /// The default of `1.0` is a conservative choice for custom spaces; the
    /// provided metrics override it (e.g. dimensionality for vector spaces,
    /// the op/char/position code length for edit distance).
    ///
    /// `data` is the dataset under analysis: some costs depend on dataset
    /// statistics such as the alphabet size or the longest word.
    fn transformation_cost(&self, data: &[P]) -> f64 {
        let _ = data;
        1.0
    }
}

/// Blanket impl so `&M` can be used wherever a metric is expected.
impl<P, M: Metric<P> + ?Sized> Metric<P> for &M {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        (**self).distance(a, b)
    }

    fn transformation_cost(&self, data: &[P]) -> f64 {
        (**self).transformation_cost(data)
    }
}

/// Blanket impl so a shared `Arc<M>` is itself a metric. This is how
/// stateful wrappers such as [`CountingMetric`] move into an owned fitted
/// model while the caller keeps a handle to read the state afterwards.
impl<P, M: Metric<P> + ?Sized> Metric<P> for std::sync::Arc<M> {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        (**self).distance(a, b)
    }

    fn transformation_cost(&self, data: &[P]) -> f64 {
        (**self).transformation_cost(data)
    }
}

/// Universal code length for integers, `⟨z⟩`, after Rissanen (1983) as used
/// by the paper (footnote 6): `⟨z⟩ ≈ log₂(z) + log₂(log₂(z)) + …`, keeping
/// only the positive terms. This is the optimal code length when the range
/// of `z` is unknown a priori.
///
/// Defined for `z ≥ 1`; `⟨1⟩ = 0`. Callers that may produce zeros must add
/// one first ("we add ones to some values whose code lengths are required,
/// so to account for zeros" — Sec. IV-D).
///
/// # Panics
/// Panics in debug builds if `z == 0`.
#[inline]
pub fn universal_code_length(z: u64) -> f64 {
    debug_assert!(z >= 1, "universal code length requires z >= 1");
    let mut total = 0.0;
    let mut term = (z.max(1) as f64).log2();
    while term > 0.0 {
        total += term;
        term = term.log2();
    }
    total
}

/// `⟨·⟩` applied to a real value: clamps up to 1 and takes the ceiling, i.e.
/// `⟨max(1, ⌈v⌉)⟩`. This is the form every use in Def. 5/Def. 7 reduces to
/// once the paper's "+1 for zeros" adjustments are applied by the caller.
#[inline]
pub fn universal_code_length_f64(v: f64) -> f64 {
    universal_code_length(v.ceil().max(1.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universal_code_of_one_is_zero() {
        assert_eq!(universal_code_length(1), 0.0);
    }

    #[test]
    fn universal_code_of_two() {
        // log2(2) = 1, log2(1) = 0 (dropped): total 1.
        assert_eq!(universal_code_length(2), 1.0);
    }

    #[test]
    fn universal_code_of_four() {
        // log2(4) = 2, log2(2) = 1, log2(1) = 0: total 3.
        assert_eq!(universal_code_length(4), 3.0);
    }

    #[test]
    fn universal_code_of_sixteen() {
        // 4 + 2 + 1 = 7.
        assert_eq!(universal_code_length(16), 7.0);
    }

    #[test]
    fn universal_code_monotone() {
        let mut prev = 0.0;
        for z in 1..10_000u64 {
            let c = universal_code_length(z);
            assert!(c >= prev, "not monotone at {z}");
            prev = c;
        }
    }

    #[test]
    fn universal_code_f64_clamps_small_values() {
        assert_eq!(universal_code_length_f64(0.0), 0.0);
        assert_eq!(universal_code_length_f64(0.3), 0.0);
        assert_eq!(universal_code_length_f64(1.0), 0.0);
        assert_eq!(universal_code_length_f64(1.1), 1.0); // ceil -> 2
    }

    #[test]
    fn metric_by_reference_works() {
        let m = Euclidean;
        let r = &m;
        let a = vec![0.0, 0.0];
        let b = vec![3.0, 4.0];
        assert_eq!(Metric::distance(&r, &a, &b), 5.0);
    }
}
