//! `L_p` metrics for dense vector data.
//!
//! All metrics in this module are generic over `P: AsRef<[f64]>`, so they
//! work with `Vec<f64>`, `[f64; N]`, boxed slices, and newtypes that
//! deref to coordinate slices. Vectors of mismatched dimensionality are a
//! programmer error and panic in debug builds; in release builds the extra
//! coordinates of the longer vector are ignored, matching `zip` semantics.

use crate::Metric;

#[inline]
fn coords<'a, P: AsRef<[f64]>>(a: &'a P, b: &'a P) -> (&'a [f64], &'a [f64]) {
    let (a, b) = (a.as_ref(), b.as_ref());
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    (a, b)
}

/// Dimensionality-derived transformation cost (Def. 7): describing a point
/// one unit away requires one coordinate delta per feature.
fn vector_transformation_cost<P: AsRef<[f64]>>(data: &[P]) -> f64 {
    data.first().map_or(1.0, |p| p.as_ref().len().max(1) as f64)
}

/// The Euclidean (`L_2`) distance — the paper's default for vector data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl<P: AsRef<[f64]> + Sync> Metric<P> for Euclidean {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        let (a, b) = coords(a, b);
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    fn transformation_cost(&self, data: &[P]) -> f64 {
        vector_transformation_cost(data)
    }
}

/// The Manhattan (`L_1`) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl<P: AsRef<[f64]> + Sync> Metric<P> for Manhattan {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        let (a, b) = coords(a, b);
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn transformation_cost(&self, data: &[P]) -> f64 {
        vector_transformation_cost(data)
    }
}

/// The Chebyshev (`L_∞`) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl<P: AsRef<[f64]> + Sync> Metric<P> for Chebyshev {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        let (a, b) = coords(a, b);
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn transformation_cost(&self, data: &[P]) -> f64 {
        vector_transformation_cost(data)
    }
}

/// The general Minkowski (`L_p`) distance for `p ≥ 1`.
///
/// `p < 1` does not satisfy the triangle inequality and is rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// Creates an `L_p` metric.
    ///
    /// # Panics
    /// Panics if `p < 1` or `p` is not finite (not a metric).
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && p >= 1.0,
            "Minkowski requires finite p >= 1"
        );
        Self { p }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl<P: AsRef<[f64]> + Sync> Metric<P> for Minkowski {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        let (a, b) = coords(a, b);
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs().powf(self.p))
            .sum::<f64>()
            .powf(1.0 / self.p)
    }

    fn transformation_cost(&self, data: &[P]) -> f64 {
        vector_transformation_cost(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: &[f64]) -> Vec<f64> {
        c.to_vec()
    }

    #[test]
    fn euclidean_known_value() {
        assert_eq!(Euclidean.distance(&v(&[0.0, 0.0]), &v(&[3.0, 4.0])), 5.0);
    }

    #[test]
    fn euclidean_identity() {
        let p = v(&[1.5, -2.5, 3.0]);
        assert_eq!(Euclidean.distance(&p, &p), 0.0);
    }

    #[test]
    fn manhattan_known_value() {
        assert_eq!(Manhattan.distance(&v(&[1.0, 2.0]), &v(&[4.0, -2.0])), 7.0);
    }

    #[test]
    fn chebyshev_known_value() {
        assert_eq!(Chebyshev.distance(&v(&[1.0, 2.0]), &v(&[4.0, -2.0])), 4.0);
    }

    #[test]
    fn minkowski_p1_matches_manhattan() {
        let a = v(&[0.2, -0.7, 1.0]);
        let b = v(&[-1.0, 0.0, 2.5]);
        let got = Minkowski::new(1.0).distance(&a, &b);
        let want = Manhattan.distance(&a, &b);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn minkowski_p2_matches_euclidean() {
        let a = v(&[0.2, -0.7, 1.0]);
        let b = v(&[-1.0, 0.0, 2.5]);
        let got = Minkowski::new(2.0).distance(&a, &b);
        let want = Euclidean.distance(&a, &b);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn minkowski_rejects_p_below_one() {
        let _ = Minkowski::new(0.5);
    }

    #[test]
    fn transformation_cost_is_dimensionality() {
        let data = vec![v(&[0.0; 7]), v(&[1.0; 7])];
        assert_eq!(Euclidean.transformation_cost(&data), 7.0);
        assert_eq!(Manhattan.transformation_cost(&data), 7.0);
    }

    #[test]
    fn transformation_cost_of_empty_dataset_defaults_to_one() {
        let data: Vec<Vec<f64>> = vec![];
        assert_eq!(Euclidean.transformation_cost(&data), 1.0);
    }

    #[test]
    fn symmetry_spot_checks() {
        let a = v(&[0.1, 0.9, -4.0]);
        let b = v(&[2.0, -1.0, 0.5]);
        for m in [1.0f64, 1.5, 2.0, 3.0] {
            let mk = Minkowski::new(m);
            assert_eq!(mk.distance(&a, &b), mk.distance(&b, &a));
        }
    }
}
