//! Ordered labeled trees and the Zhang–Shasha tree edit distance.
//!
//! The paper analyses skeleton graphs with "the Graph edit distance"
//! (Sec. V-D) and cites Pawlik & Augsten's tree-edit-distance work [48].
//! General graph edit distance is NP-hard; skeletons, however, are trees
//! (a silhouette skeleton is an acyclic stick figure), so we model them as
//! ordered labeled trees and use the classic Zhang–Shasha algorithm — an
//! exact `O(n² · min-depth²)` dynamic program and a true metric under unit
//! costs. This substitution is recorded in `DESIGN.md` §4.

use crate::{universal_code_length, Metric};

/// A node of an ordered labeled tree, used to *build* trees ergonomically.
/// Compile to an [`OrderedTree`] before computing distances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Arbitrary label; equality of labels is what the unit-cost model sees.
    pub label: u32,
    /// Ordered children, left to right.
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// A leaf with the given label.
    pub fn new(label: u32) -> Self {
        Self {
            label,
            children: Vec::new(),
        }
    }

    /// An internal node with the given label and children.
    pub fn with_children(label: u32, children: Vec<TreeNode>) -> Self {
        Self { label, children }
    }

    /// Appends a child, returning `self` for chaining.
    pub fn child(mut self, c: TreeNode) -> Self {
        self.children.push(c);
        self
    }

    /// Number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TreeNode::size).sum::<usize>()
    }
}

/// An ordered labeled tree compiled into the postorder arrays the
/// Zhang–Shasha DP consumes: labels, leftmost-leaf indices and keyroots.
///
/// Compiling once and reusing the compiled form matters: a metric tree
/// probes the same elements against many queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedTree {
    /// Node labels in postorder.
    labels: Vec<u32>,
    /// `lml[i]`: postorder index of the leftmost leaf of the subtree at `i`.
    lml: Vec<usize>,
    /// Keyroots in increasing postorder index.
    keyroots: Vec<usize>,
}

impl OrderedTree {
    /// Compiles a [`TreeNode`] into postorder form.
    pub fn from_node(root: &TreeNode) -> Self {
        let mut labels = Vec::new();
        let mut lml = Vec::new();
        // Iterative postorder: stack of (node, leftmost-leaf-so-far marker).
        // Returns the postorder index of `node`'s leftmost leaf.
        fn walk(node: &TreeNode, labels: &mut Vec<u32>, lml: &mut Vec<usize>) -> usize {
            let mut leftmost = usize::MAX;
            for (k, c) in node.children.iter().enumerate() {
                let lm = walk(c, labels, lml);
                if k == 0 {
                    leftmost = lm;
                }
            }
            let idx = labels.len();
            if leftmost == usize::MAX {
                leftmost = idx; // leaf: its own leftmost leaf
            }
            labels.push(node.label);
            lml.push(leftmost);
            leftmost
        }
        walk(root, &mut labels, &mut lml);
        let keyroots = Self::compute_keyroots(&lml);
        Self {
            labels,
            lml,
            keyroots,
        }
    }

    /// The empty tree (distance to it is the size of the other tree).
    pub fn empty() -> Self {
        Self {
            labels: Vec::new(),
            lml: Vec::new(),
            keyroots: Vec::new(),
        }
    }

    /// A node is a keyroot iff it is the highest node with its leftmost
    /// leaf, i.e. the root or any node with a left sibling.
    fn compute_keyroots(lml: &[usize]) -> Vec<usize> {
        let n = lml.len();
        let mut seen = vec![false; n];
        let mut keyroots = Vec::new();
        // Scan from the root (last postorder index) down.
        for i in (0..n).rev() {
            if !seen[lml[i]] {
                seen[lml[i]] = true;
                keyroots.push(i);
            }
        }
        keyroots.sort_unstable();
        keyroots
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.labels.len()
    }

    /// Exact Zhang–Shasha tree edit distance with unit costs
    /// (insert = delete = 1, relabel = 1 if labels differ else 0).
    pub fn edit_distance(&self, other: &Self) -> usize {
        let (n1, n2) = (self.size(), other.size());
        if n1 == 0 {
            return n2;
        }
        if n2 == 0 {
            return n1;
        }
        let mut td = vec![0usize; n1 * n2]; // tree-distance table
        let mut fd = vec![0usize; (n1 + 1) * (n2 + 1)]; // forest scratch
        let w2 = n2 + 1;
        for &k1 in &self.keyroots {
            for &k2 in &other.keyroots {
                let (l1, l2) = (self.lml[k1], other.lml[k2]);
                // Forest indices are offset so that (l1-1, l2-1) maps to 0.
                // fd[(i - l1 + 1) * w2 + (j - l2 + 1)] holds the distance of
                // forests self[l1..=i] and other[l2..=j].
                fd[0] = 0;
                for i in l1..=k1 {
                    let fi = i - l1 + 1;
                    fd[fi * w2] = fd[(fi - 1) * w2] + 1; // delete i
                }
                for j in l2..=k2 {
                    let fj = j - l2 + 1;
                    fd[fj] = fd[fj - 1] + 1; // insert j
                }
                for i in l1..=k1 {
                    let fi = i - l1 + 1;
                    for j in l2..=k2 {
                        let fj = j - l2 + 1;
                        let del = fd[(fi - 1) * w2 + fj] + 1;
                        let ins = fd[fi * w2 + fj - 1] + 1;
                        if self.lml[i] == l1 && other.lml[j] == l2 {
                            // Both forests are whole trees: record tree dist.
                            let ren = fd[(fi - 1) * w2 + fj - 1]
                                + usize::from(self.labels[i] != other.labels[j]);
                            let d = del.min(ins).min(ren);
                            fd[fi * w2 + fj] = d;
                            td[i * n2 + j] = d;
                        } else {
                            // Jump over the already-solved subtree pair.
                            let pi = self.lml[i] - l1; // == lml(i)-1 - l1 + 1
                            let pj = other.lml[j] - l2;
                            let sub = fd[pi * w2 + pj] + td[i * n2 + j];
                            fd[fi * w2 + fj] = del.min(ins).min(sub);
                        }
                    }
                }
            }
        }
        td[(n1 - 1) * n2 + (n2 - 1)]
    }
}

impl From<&TreeNode> for OrderedTree {
    fn from(n: &TreeNode) -> Self {
        OrderedTree::from_node(n)
    }
}

/// Zhang–Shasha tree edit distance as a [`Metric`] over compiled
/// [`OrderedTree`]s — the skeleton-graph distance of the paper's Fig. 1(iii).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeEditDistance;

impl Metric<OrderedTree> for TreeEditDistance {
    #[inline]
    fn distance(&self, a: &OrderedTree, b: &OrderedTree) -> f64 {
        a.edit_distance(b) as f64
    }

    /// Analogue of the paper's word cost (Def. 7): an edit step needs the
    /// operation (3 choices), the label, and the node position:
    /// `⟨3⟩ + ⟨#distinct labels⟩ + ⟨max tree size⟩`.
    fn transformation_cost(&self, data: &[OrderedTree]) -> f64 {
        let mut labels: Vec<u32> = data.iter().flat_map(|t| t.labels.clone()).collect();
        labels.sort_unstable();
        labels.dedup();
        let distinct = labels.len().max(1) as u64;
        let largest = data.iter().map(OrderedTree::size).max().unwrap_or(1).max(1) as u64;
        universal_code_length(3) + universal_code_length(distinct) + universal_code_length(largest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(l: u32) -> TreeNode {
        TreeNode::new(l)
    }

    /// The classic Zhang–Shasha example:
    /// T1 = f(d(a, c(b)), e), T2 = f(c(d(a, b)), e); distance 2.
    fn zs_pair() -> (OrderedTree, OrderedTree) {
        let t1 = TreeNode::with_children(
            0, // f
            vec![
                TreeNode::with_children(
                    1,
                    vec![leaf(2), TreeNode::with_children(3, vec![leaf(4)])],
                ), // d(a, c(b))
                leaf(5), // e
            ],
        );
        let t2 = TreeNode::with_children(
            0, // f
            vec![
                TreeNode::with_children(
                    3,
                    vec![TreeNode::with_children(1, vec![leaf(2), leaf(4)])],
                ), // c(d(a, b))
                leaf(5), // e
            ],
        );
        (OrderedTree::from_node(&t1), OrderedTree::from_node(&t2))
    }

    #[test]
    fn zhang_shasha_classic_example() {
        let (a, b) = zs_pair();
        assert_eq!(a.edit_distance(&b), 2);
        assert_eq!(b.edit_distance(&a), 2);
    }

    #[test]
    fn identical_trees_have_zero_distance() {
        let (a, _) = zs_pair();
        assert_eq!(a.edit_distance(&a), 0);
    }

    #[test]
    fn distance_to_empty_is_size() {
        let (a, _) = zs_pair();
        assert_eq!(a.edit_distance(&OrderedTree::empty()), a.size());
        assert_eq!(OrderedTree::empty().edit_distance(&a), a.size());
        assert_eq!(OrderedTree::empty().edit_distance(&OrderedTree::empty()), 0);
    }

    #[test]
    fn single_relabel_costs_one() {
        let a = OrderedTree::from_node(&leaf(1));
        let b = OrderedTree::from_node(&leaf(2));
        assert_eq!(a.edit_distance(&b), 1);
    }

    #[test]
    fn insert_chain_costs_length() {
        // a vs a->b->c (chain): two insertions.
        let a = OrderedTree::from_node(&leaf(1));
        let chain = TreeNode::with_children(1, vec![TreeNode::with_children(2, vec![leaf(3)])]);
        let b = OrderedTree::from_node(&chain);
        assert_eq!(a.edit_distance(&b), 2);
    }

    #[test]
    fn order_matters_for_ordered_trees() {
        let ab = OrderedTree::from_node(&TreeNode::with_children(0, vec![leaf(1), leaf(2)]));
        let ba = OrderedTree::from_node(&TreeNode::with_children(0, vec![leaf(2), leaf(1)]));
        // Swapping two distinct leaves costs 2 relabels.
        assert_eq!(ab.edit_distance(&ba), 2);
    }

    #[test]
    fn keyroots_of_chain_is_root_only() {
        let chain = TreeNode::with_children(1, vec![TreeNode::with_children(2, vec![leaf(3)])]);
        let t = OrderedTree::from_node(&chain);
        assert_eq!(t.keyroots, vec![2]); // only the root (postorder last)
    }

    #[test]
    fn keyroots_of_star_are_all_but_first_child_plus_root() {
        // root with 3 leaves: leaves at postorder 0,1,2; root at 3.
        let star = TreeNode::with_children(0, vec![leaf(1), leaf(2), leaf(3)]);
        let t = OrderedTree::from_node(&star);
        assert_eq!(t.keyroots, vec![1, 2, 3]);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let trees: Vec<OrderedTree> = vec![
            OrderedTree::from_node(&leaf(1)),
            OrderedTree::from_node(&TreeNode::with_children(1, vec![leaf(2)])),
            OrderedTree::from_node(&TreeNode::with_children(0, vec![leaf(1), leaf(2)])),
            zs_pair().0,
            zs_pair().1,
            OrderedTree::empty(),
        ];
        for a in &trees {
            for b in &trees {
                for c in &trees {
                    let ab = a.edit_distance(b);
                    let bc = b.edit_distance(c);
                    let ac = a.edit_distance(c);
                    assert!(ac <= ab + bc, "triangle violated");
                }
            }
        }
    }

    #[test]
    fn metric_wrapper_and_cost() {
        let (a, b) = zs_pair();
        assert_eq!(TreeEditDistance.distance(&a, &b), 2.0);
        let data = vec![a, b];
        let t = TreeEditDistance.transformation_cost(&data);
        // 6 distinct labels, max size 6: <3> + <6> + <6>
        let want = universal_code_length(3) + 2.0 * universal_code_length(6);
        assert!((t - want).abs() < 1e-12);
    }
}
