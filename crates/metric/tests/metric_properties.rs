//! Property-based tests for the metric axioms.
//!
//! Every metric shipped by `mccatch-metric` must satisfy identity, symmetry
//! and the triangle inequality — the Slim-tree's pruning correctness in
//! `mccatch-index` depends on it.

use mccatch_metric::{
    Chebyshev, Euclidean, Levenshtein, Manhattan, Metric, Minkowski, OrderedTree, SoundexDistance,
    TreeEditDistance, TreeNode,
};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

fn vec3() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, 3)
}

fn word() -> impl Strategy<Value = String> {
    "[a-zéøü]{0,12}".prop_map(|s| s)
}

/// Random small ordered tree, built as a parent-pointer sequence.
fn tree() -> impl Strategy<Value = OrderedTree> {
    (
        prop::collection::vec(0u32..5, 1..10),
        prop::collection::vec(0usize..8, 0..9),
    )
        .prop_map(|(labels, parents)| {
            // Node i>0 attaches under node parents[i-1] % i (a valid earlier node).
            let n = labels.len();
            let mut nodes: Vec<TreeNode> = labels.iter().map(|&l| TreeNode::new(l)).collect();
            // Build children lists.
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
            for i in 1..n {
                let p = parents.get(i - 1).copied().unwrap_or(0) % i;
                children[p].push(i);
            }
            // Assemble bottom-up (higher indices attach first).
            for i in (1..n).rev() {
                let kids: Vec<TreeNode> = children[i]
                    .iter()
                    .map(|&c| std::mem::replace(&mut nodes[c], TreeNode::new(0)))
                    .collect();
                nodes[i].children = kids;
            }
            let kids: Vec<TreeNode> = children[0]
                .iter()
                .map(|&c| std::mem::replace(&mut nodes[c], TreeNode::new(0)))
                .collect();
            nodes[0].children = kids;
            OrderedTree::from_node(&nodes[0])
        })
}

macro_rules! metric_axioms {
    ($name:ident, $metric:expr, $strategy:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #[test]
                fn identity(a in $strategy) {
                    let m = $metric;
                    prop_assert!(m.distance(&a, &a).abs() <= EPS);
                }

                #[test]
                fn symmetry(a in $strategy, b in $strategy) {
                    let m = $metric;
                    prop_assert!((m.distance(&a, &b) - m.distance(&b, &a)).abs() <= EPS);
                }

                #[test]
                fn non_negativity(a in $strategy, b in $strategy) {
                    let m = $metric;
                    prop_assert!(m.distance(&a, &b) >= -EPS);
                }

                #[test]
                fn triangle(a in $strategy, b in $strategy, c in $strategy) {
                    let m = $metric;
                    let ab = m.distance(&a, &b);
                    let bc = m.distance(&b, &c);
                    let ac = m.distance(&a, &c);
                    // Relative tolerance for float accumulation.
                    prop_assert!(ac <= ab + bc + EPS * (1.0 + ab + bc));
                }
            }
        }
    };
}

metric_axioms!(euclidean, Euclidean, vec3());
metric_axioms!(manhattan, Manhattan, vec3());
metric_axioms!(chebyshev, Chebyshev, vec3());
metric_axioms!(minkowski_p3, Minkowski::new(3.0), vec3());
metric_axioms!(levenshtein, Levenshtein, word());
metric_axioms!(soundex_dist, SoundexDistance, word());
metric_axioms!(tree_edit, TreeEditDistance, tree());

proptest! {
    /// Levenshtein distance is bounded by the longer string's length.
    #[test]
    fn levenshtein_upper_bound(a in word(), b in word()) {
        let d = Levenshtein.distance(&a, &b);
        let bound = a.chars().count().max(b.chars().count()) as f64;
        prop_assert!(d <= bound);
    }

    /// Levenshtein distance is at least the length difference.
    #[test]
    fn levenshtein_lower_bound(a in word(), b in word()) {
        let d = Levenshtein.distance(&a, &b);
        let lower = (a.chars().count() as i64 - b.chars().count() as i64).unsigned_abs() as f64;
        prop_assert!(d >= lower);
    }

    /// Tree edit distance is bounded by the sum of sizes (delete all + insert all).
    #[test]
    fn ted_upper_bound(a in tree(), b in tree()) {
        let d = TreeEditDistance.distance(&a, &b);
        prop_assert!(d <= (a.size() + b.size()) as f64);
    }

    /// Tree edit distance at least the size difference.
    #[test]
    fn ted_lower_bound(a in tree(), b in tree()) {
        let d = TreeEditDistance.distance(&a, &b);
        let lower = (a.size() as i64 - b.size() as i64).unsigned_abs() as f64;
        prop_assert!(d >= lower);
    }

    /// Identity of indiscernibles for Levenshtein (a true metric).
    #[test]
    fn levenshtein_zero_iff_equal(a in word(), b in word()) {
        let d = Levenshtein.distance(&a, &b);
        prop_assert_eq!(d == 0.0, a == b);
    }
}
