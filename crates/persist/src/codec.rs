//! Endian-stable primitives for the snapshot codec: little-endian
//! fixed-width integers, bit-exact `f64`s, and CRC-32 checksum wrappers
//! over any `io::Write` / `io::Read`.

use crate::error::PersistError;
use std::io::{Read, Write};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup
/// table, built at compile time.
static CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Crc32(u32);

impl Crc32 {
    pub(crate) fn new() -> Self {
        Self(0xFFFF_FFFF)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 >> 8) ^ CRC_TABLE[((self.0 ^ b as u32) & 0xFF) as usize];
        }
    }

    pub(crate) fn finalize(self) -> u32 {
        !self.0
    }
}

/// The CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) of `bytes` — the
/// same checksum the snapshot trailer uses, exposed so higher layers
/// (per-tenant snapshot manifests) can fingerprint whole files with
/// the identical polynomial and verify them before attempting a load.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finalize()
}

/// A `Write` adapter that checksums and counts every byte passing
/// through, so the snapshot writer can append the CRC and report the
/// total size without buffering the whole snapshot.
pub(crate) struct ChecksumWriter<W: Write> {
    inner: W,
    crc: Crc32,
    bytes: u64,
}

impl<W: Write> ChecksumWriter<W> {
    pub(crate) fn new(inner: W) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
            bytes: 0,
        }
    }

    /// Tears the adapter down: the inner writer, the checksum of
    /// everything written, and the byte count.
    pub(crate) fn finish(self) -> (W, u32, u64) {
        (self.inner, self.crc.finalize(), self.bytes)
    }
}

impl<W: Write> Write for ChecksumWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter that checksums and counts every byte passing
/// through, so the snapshot reader can verify the trailing CRC after
/// streaming the body without re-reading it.
pub(crate) struct ChecksumReader<R: Read> {
    inner: R,
    crc: Crc32,
    bytes: u64,
}

impl<R: Read> ChecksumReader<R> {
    pub(crate) fn new(inner: R) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
            bytes: 0,
        }
    }

    /// The checksum of everything read so far.
    pub(crate) fn crc(&self) -> u32 {
        self.crc.finalize()
    }

    /// Total bytes read so far. (Named to dodge `Read::bytes`, which
    /// would win method resolution by taking `self` by value.)
    #[cfg(test)]
    pub(crate) fn bytes_read(&self) -> u64 {
        self.bytes
    }

    /// The inner reader, for reading past the checksummed region (the
    /// trailing CRC itself).
    pub(crate) fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for ChecksumReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }
}

// --- fixed-width little-endian primitives ------------------------------

pub(crate) fn write_u8<W: Write>(w: &mut W, v: u8) -> Result<(), PersistError> {
    w.write_all(&[v]).map_err(PersistError::Io)
}

pub(crate) fn write_u16<W: Write>(w: &mut W, v: u16) -> Result<(), PersistError> {
    w.write_all(&v.to_le_bytes()).map_err(PersistError::Io)
}

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<(), PersistError> {
    w.write_all(&v.to_le_bytes()).map_err(PersistError::Io)
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), PersistError> {
    w.write_all(&v.to_le_bytes()).map_err(PersistError::Io)
}

/// Writes the raw IEEE-754 bits: bit-exact for every value including
/// infinities and NaN payloads, and identical on every platform.
pub(crate) fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<(), PersistError> {
    write_u64(w, v.to_bits())
}

/// Reads exactly `N` bytes; a clean end-of-file becomes
/// [`PersistError::Truncated`] tagged with the field being read.
fn read_array<const N: usize, R: Read>(
    r: &mut R,
    context: &'static str,
) -> Result<[u8; N], PersistError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Truncated { context }
        } else {
            PersistError::Io(e)
        }
    })?;
    Ok(buf)
}

pub(crate) fn read_u8<R: Read>(r: &mut R, context: &'static str) -> Result<u8, PersistError> {
    Ok(read_array::<1, _>(r, context)?[0])
}

pub(crate) fn read_u16<R: Read>(r: &mut R, context: &'static str) -> Result<u16, PersistError> {
    Ok(u16::from_le_bytes(read_array(r, context)?))
}

pub(crate) fn read_u32<R: Read>(r: &mut R, context: &'static str) -> Result<u32, PersistError> {
    Ok(u32::from_le_bytes(read_array(r, context)?))
}

pub(crate) fn read_u64<R: Read>(r: &mut R, context: &'static str) -> Result<u64, PersistError> {
    Ok(u64::from_le_bytes(read_array(r, context)?))
}

pub(crate) fn read_f64<R: Read>(r: &mut R, context: &'static str) -> Result<f64, PersistError> {
    Ok(f64::from_bits(read_u64(r, context)?))
}

pub(crate) fn read_exact_n<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), PersistError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Truncated { context }
        } else {
            PersistError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical CRC-32 check value: crc32("123456789").
        let mut crc = Crc32::new();
        crc.update(b"123456789");
        assert_eq!(crc.finalize(), 0xCBF4_3926);
    }

    #[test]
    fn checksum_writer_and_reader_agree() {
        let mut w = ChecksumWriter::new(Vec::new());
        write_u64(&mut w, 0xDEAD_BEEF_0BAD_F00D).unwrap();
        write_f64(&mut w, -0.0).unwrap();
        let (buf, crc_w, bytes_w) = w.finish();
        assert_eq!(bytes_w, 16);

        let mut r = ChecksumReader::new(&buf[..]);
        assert_eq!(read_u64(&mut r, "a").unwrap(), 0xDEAD_BEEF_0BAD_F00D);
        let v = read_f64(&mut r, "b").unwrap();
        assert_eq!(v.to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.crc(), crc_w);
        assert_eq!(r.bytes_read(), 16);
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let err = read_u32(&mut &[0u8; 2][..], "the field").unwrap_err();
        assert!(matches!(
            err,
            PersistError::Truncated {
                context: "the field"
            }
        ));
    }
}
