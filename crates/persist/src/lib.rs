//! # mccatch-persist
//!
//! Versioned model snapshots, warm restart, and an NDJSON ingest
//! replay log for the MCCATCH workspace (ICDE 2024).
//!
//! A snapshot is **not** a serialized tree. It stores the model's
//! reference points, resolved hyperparameters, and index-backend name,
//! plus the fitted summary (diameter, radius grid, MDL cutoff,
//! [`ModelStats`](mccatch_core::ModelStats)) as a *witness*. Because
//! the whole pipeline is deterministic, [`load_model`] refits the
//! stored points and verifies the rebuild bit-for-bit against the
//! witness — so a successful load guarantees byte-identical
//! `score_batch`, `top_k`, and `score_cutoff` to the model that was
//! saved, while a snapshot written by an incompatible build is refused
//! as [`PersistError::RebuildDiverged`] instead of silently serving
//! different scores.
//!
//! Damaged input is always a typed [`PersistError`] — truncation,
//! corruption, bad magic, version or dimensionality mismatches never
//! panic and never trigger attacker-sized allocations.
//!
//! The crate has three layers:
//!
//! - the codec: [`save_model`] / [`load_model`] / [`read_info`] over
//!   any `io::Write` / `io::Read`, with the format spelled out in
//!   [`snapshot`];
//! - the replay log: [`ReplayWriter`] / [`ReplayReader`], one NDJSON
//!   line per accepted stream event, with a configurable
//!   [`FsyncPolicy`] and a truncation-tolerant tail;
//! - warm-restart glue: [`save_store`] / [`load_store`] for the
//!   serving [`ModelStore`](mccatch_core::ModelStore), and
//!   [`checkpoint_stream`] / [`restore_stream`] for the streaming
//!   [`StreamDetector`](mccatch_stream::StreamDetector).
//!
//! ## Example: snapshot round trip
//!
//! ```
//! use mccatch_core::{McCatch, Params};
//! use mccatch_index::VpTreeBuilder;
//! use mccatch_metric::Euclidean;
//! use mccatch_persist::{load_model, save_model};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let points: Vec<Vec<f64>> =
//!     (0..64).map(|i| vec![i as f64, (i % 7) as f64]).collect();
//! let fitted =
//!     McCatch::new(Params::default())?.fit(points, Euclidean, VpTreeBuilder::default())?;
//!
//! let mut buf = Vec::new();
//! save_model(&fitted, 0, 0, &mut buf)?;
//!
//! let loaded = load_model(&buf[..], Euclidean, VpTreeBuilder::default())?;
//! let query = vec![3.5, 2.0];
//! assert_eq!(
//!     fitted.score_one(&query).to_bits(),
//!     loaded.fitted.score_one(&query).to_bits(),
//! );
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod codec;
mod error;
mod point;
mod replay;
mod restart;
pub mod snapshot;

pub use codec::crc32;
pub use error::PersistError;
pub use point::PersistPoint;
pub use replay::{FsyncPolicy, ReplayEntry, ReplayReader, ReplayWriter};
pub use restart::{checkpoint_stream, load_store, restore_stream, save_store, LoadedStore};
pub use snapshot::{load_model, read_info, save_model, LoadedModel, SnapshotInfo, FORMAT_VERSION};
