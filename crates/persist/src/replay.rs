//! The NDJSON ingest replay log: one line per accepted stream event,
//! appended as it happens, so a warm restart can rebuild the sliding
//! window exactly instead of approximating it from the model's
//! reference points.
//!
//! Each line is a self-describing JSON object:
//!
//! ```text
//! {"seq":104,"tick":40,"point":[0.25,-1.5]}
//! ```
//!
//! Floats are written with Rust's shortest round-trip formatting, so
//! replayed points are **bit-identical** to the ingested ones. The
//! reader tolerates a truncated or malformed *final* line — the
//! expected shape of a crash mid-append — but reports any earlier
//! malformation as a hard [`PersistError::Replay`], since silently
//! skipping interior events would corrupt the window.

use crate::error::PersistError;
use crate::point::PersistPoint;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// How eagerly the replay log is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended event: no accepted event is ever
    /// lost, at the cost of one sync per ingest.
    Always,
    /// `fsync` after every N appended events (values of 0 behave as 1):
    /// bounds the loss window to the last N events.
    EveryN(u64),
    /// Never `fsync` explicitly; rely on OS write-back. Fastest, loses
    /// whatever the OS had not yet flushed at crash time.
    Never,
}

/// An append-only writer for the replay log. Opens the file in append
/// mode, so restarting a server keeps extending the same log.
#[derive(Debug)]
pub struct ReplayWriter {
    file: BufWriter<File>,
    policy: FsyncPolicy,
    pending: u64,
}

impl ReplayWriter {
    /// Opens (creating if absent) the log at `path` for appending.
    pub fn open(path: impl AsRef<Path>, policy: FsyncPolicy) -> Result<Self, PersistError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(PersistError::Io)?;
        Ok(Self {
            file: BufWriter::new(file),
            policy,
            pending: 0,
        })
    }

    /// Appends one accepted event and applies the fsync policy.
    pub fn append<P: PersistPoint>(
        &mut self,
        seq: u64,
        tick: u64,
        point: &P,
    ) -> Result<(), PersistError> {
        let mut line = String::with_capacity(48);
        line.push_str(&format!("{{\"seq\":{seq},\"tick\":{tick},\"point\":"));
        point.write_json(&mut line);
        line.push_str("}\n");
        self.file
            .write_all(line.as_bytes())
            .map_err(PersistError::Io)?;
        self.pending += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) if self.pending >= n.max(1) => self.sync()?,
            _ => {}
        }
        Ok(())
    }

    /// Flushes buffered lines and syncs file data to stable storage.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.file.flush().map_err(PersistError::Io)?;
        self.file.get_ref().sync_data().map_err(PersistError::Io)?;
        self.pending = 0;
        Ok(())
    }
}

impl Drop for ReplayWriter {
    /// Best-effort flush of buffered lines (no fsync) on drop.
    fn drop(&mut self) {
        let _ = self.file.flush();
    }
}

/// One replayed event.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayEntry<P> {
    /// The stream position the event was accepted at.
    pub seq: u64,
    /// The logical timestamp it carried.
    pub tick: u64,
    /// The point itself, bit-identical to the ingested one.
    pub point: P,
}

/// A reader for replay logs written by [`ReplayWriter`].
#[derive(Debug)]
pub struct ReplayReader<R> {
    inner: R,
}

impl ReplayReader<BufReader<File>> {
    /// Opens the log at `path` for reading.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(Self::new(BufReader::new(
            File::open(path).map_err(PersistError::Io)?,
        )))
    }
}

impl<R: BufRead> ReplayReader<R> {
    /// Wraps any buffered reader.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Reads every event in the log, in order.
    ///
    /// A malformed or truncated **final** line is tolerated (dropped) —
    /// that is what a crash mid-append leaves behind. A malformed line
    /// *followed by more content*, or a `tick` that regresses, is a
    /// hard [`PersistError::Replay`].
    pub fn read_all<P: PersistPoint>(mut self) -> Result<Vec<ReplayEntry<P>>, PersistError> {
        let mut text = String::new();
        self.inner
            .read_to_string(&mut text)
            .map_err(PersistError::Io)?;
        let lines: Vec<(u64, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i as u64 + 1, l))
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        let last_idx = lines.len().checked_sub(1);
        let mut entries = Vec::with_capacity(lines.len());
        let mut last_tick: Option<u64> = None;
        for (i, (line_no, line)) in lines.iter().enumerate() {
            match parse_line::<P>(line) {
                Ok((seq, tick, point)) => {
                    if let Some(prev) = last_tick {
                        if tick < prev {
                            return Err(PersistError::Replay {
                                line: *line_no,
                                message: format!("tick {tick} regresses below {prev}"),
                            });
                        }
                    }
                    last_tick = Some(tick);
                    entries.push(ReplayEntry { seq, tick, point });
                }
                Err(message) => {
                    if Some(i) == last_idx {
                        break; // torn tail from a crash mid-append
                    }
                    return Err(PersistError::Replay {
                        line: *line_no,
                        message,
                    });
                }
            }
        }
        Ok(entries)
    }
}

/// Parses one `{"seq":N,"tick":T,"point":<json>}` line.
fn parse_line<P: PersistPoint>(line: &str) -> Result<(u64, u64, P), String> {
    let s = line.trim();
    let s = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("line is not a JSON object")?;
    let s = expect_key(s, "seq")?;
    let (seq_str, s) = s.split_once(',').ok_or("missing ',' after seq")?;
    let seq = seq_str
        .trim()
        .parse::<u64>()
        .map_err(|e| format!("bad seq {seq_str:?}: {e}"))?;
    let s = expect_key(s, "tick")?;
    let (tick_str, s) = s.split_once(',').ok_or("missing ',' after tick")?;
    let tick = tick_str
        .trim()
        .parse::<u64>()
        .map_err(|e| format!("bad tick {tick_str:?}: {e}"))?;
    let s = expect_key(s, "point")?;
    let point = P::parse_json(s)?;
    Ok((seq, tick, point))
}

/// Consumes `"key":` (with optional surrounding whitespace) from the
/// front of `s`.
fn expect_key<'a>(s: &'a str, key: &str) -> Result<&'a str, String> {
    let s = s.trim_start();
    let s = s
        .strip_prefix('"')
        .and_then(|s| s.strip_prefix(key))
        .and_then(|s| s.strip_prefix('"'))
        .ok_or_else(|| format!("missing \"{key}\" field"))?;
    let s = s.trim_start();
    s.strip_prefix(':')
        .ok_or_else(|| format!("missing ':' after \"{key}\""))
        .map(str::trim_start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_vector_events_bit_exactly() {
        let dir = std::env::temp_dir().join(format!(
            "mccatch-replay-rt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.ndjson");
        let _ = std::fs::remove_file(&path);

        let events = vec![
            (0u64, 0u64, vec![0.1 + 0.2, -0.0]),
            (1, 3, vec![f64::INFINITY, 5e-324]),
            (2, 3, vec![1.0 / 3.0, -123.456]),
        ];
        let mut w = ReplayWriter::open(&path, FsyncPolicy::EveryN(2)).unwrap();
        for (seq, tick, p) in &events {
            w.append(*seq, *tick, p).unwrap();
        }
        drop(w);

        let back = ReplayReader::open(&path)
            .unwrap()
            .read_all::<Vec<f64>>()
            .unwrap();
        assert_eq!(back.len(), events.len());
        for (entry, (seq, tick, p)) in back.iter().zip(&events) {
            assert_eq!(entry.seq, *seq);
            assert_eq!(entry.tick, *tick);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&entry.point), bits(p));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tolerates_a_torn_final_line_only() {
        let log = "{\"seq\":0,\"tick\":0,\"point\":[1]}\n{\"seq\":1,\"tick\":1,\"point\":[2";
        let entries = ReplayReader::new(log.as_bytes())
            .read_all::<Vec<f64>>()
            .unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].point, vec![1.0]);

        let log = "{\"seq\":0,\"tick\":0,\"point\":[1\n{\"seq\":1,\"tick\":1,\"point\":[2]}\n";
        let err = ReplayReader::new(log.as_bytes())
            .read_all::<Vec<f64>>()
            .unwrap_err();
        assert!(matches!(err, PersistError::Replay { line: 1, .. }));
    }

    #[test]
    fn rejects_tick_regressions() {
        let log = "{\"seq\":0,\"tick\":5,\"point\":[1]}\n{\"seq\":1,\"tick\":4,\"point\":[2]}\n";
        let err = ReplayReader::new(log.as_bytes())
            .read_all::<Vec<f64>>()
            .unwrap_err();
        assert!(matches!(err, PersistError::Replay { line: 2, .. }));
    }

    #[test]
    fn string_events_round_trip() {
        let mut line = String::new();
        let mut w_buf = Vec::new();
        {
            let mut line_owned = String::with_capacity(48);
            line_owned.push_str("{\"seq\":7,\"tick\":9,\"point\":");
            "quo\"te\\and\nnewline"
                .to_owned()
                .write_json(&mut line_owned);
            line_owned.push_str("}\n");
            line.push_str(&line_owned);
            w_buf.extend_from_slice(line_owned.as_bytes());
        }
        let entries = ReplayReader::new(&w_buf[..]).read_all::<String>().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].seq, 7);
        assert_eq!(entries[0].tick, 9);
        assert_eq!(entries[0].point, "quo\"te\\and\nnewline");
    }
}
