//! The persistence subsystem's typed failure values.

use mccatch_core::McCatchError;
use mccatch_stream::StreamError;

/// Everything that can go wrong saving or loading a snapshot or replay
/// log. Corrupt, truncated, or mismatched inputs are **values of this
/// type, never panics** — a damaged snapshot file must not take a
/// restarting server down with it.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O operation failed (other than a clean
    /// end-of-file mid-field, which is [`Truncated`](Self::Truncated)).
    Io(std::io::Error),
    /// The input does not start with the snapshot magic `MCSN` — it is
    /// not a McCatch snapshot at all.
    BadMagic {
        /// The four bytes found where the magic was expected.
        got: [u8; 4],
    },
    /// The snapshot declares a format version this build cannot read.
    UnsupportedVersion {
        /// The declared version.
        got: u16,
    },
    /// The input ended in the middle of a field — a partial write or a
    /// truncated copy.
    Truncated {
        /// Which field was being read when the input ran out.
        context: &'static str,
    },
    /// The trailing CRC-32 does not match the bytes read: the snapshot
    /// was corrupted in storage or transit.
    ChecksumMismatch {
        /// The checksum recorded in the file.
        expected: u32,
        /// The checksum computed over the bytes actually read.
        got: u32,
    },
    /// The snapshot stores a different point encoding than the caller
    /// asked to decode (e.g. a string-point snapshot loaded as `f64`
    /// vectors).
    PointKindMismatch {
        /// The kind tag the caller's point type decodes.
        expected: u8,
        /// The kind tag recorded in the snapshot.
        got: u8,
    },
    /// A stored point's dimensionality disagrees with the snapshot
    /// header's declared (uniform) dimensionality.
    DimMismatch {
        /// The header's dimensionality.
        expected: u32,
        /// The offending point's dimensionality.
        got: u32,
    },
    /// The snapshot was fitted with a different index backend than the
    /// one supplied for the rebuild. The diameter estimate — and hence
    /// the radius grid and every score — depends on the tree structure,
    /// so rebuilding with another backend would silently change results.
    BackendMismatch {
        /// The supplied builder's `backend_name()`.
        expected: String,
        /// The backend name recorded in the snapshot.
        got: String,
    },
    /// A field holds a structurally invalid value (unknown flag bits,
    /// an out-of-range enum byte, invalid UTF-8, …).
    Corrupt {
        /// Which field was invalid.
        context: &'static str,
    },
    /// The model does not support export (`Model::export` returned
    /// `None`) — only models that expose their reference points and
    /// resolved parameters can be snapshotted.
    NotExportable,
    /// The deterministic rebuild produced a model whose named summary
    /// field differs from the one recorded at save time — the snapshot
    /// was written by an incompatible (e.g. older-algorithm) build, and
    /// serving the rebuilt model would silently change scores.
    RebuildDiverged {
        /// The first summary field that disagreed.
        field: &'static str,
    },
    /// Refitting the snapshot's points failed in `McCatch::fit`.
    Fit(McCatchError),
    /// A replay-log line before the tail is malformed (the final line
    /// alone may be truncated mid-write and is tolerated).
    Replay {
        /// 1-based line number of the offending line.
        line: u64,
        /// What was wrong with it.
        message: String,
    },
    /// Rebuilding the streaming detector from an otherwise valid
    /// checkpoint failed (e.g. the restore config is invalid).
    Restore(StreamError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            Self::BadMagic { got } => {
                write!(f, "not a McCatch snapshot (magic bytes {got:02x?})")
            }
            Self::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported snapshot format version {got} (this build reads version {})",
                    crate::snapshot::FORMAT_VERSION
                )
            }
            Self::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            Self::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot checksum mismatch: file says {expected:#010x}, content hashes to {got:#010x}"
                )
            }
            Self::PointKindMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot stores point kind {got}, caller decodes kind {expected}"
                )
            }
            Self::DimMismatch { expected, got } => {
                write!(
                    f,
                    "point dimensionality {got} disagrees with the snapshot's declared {expected}"
                )
            }
            Self::BackendMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot was fitted with index backend {got:?}, rebuild requested {expected:?}"
                )
            }
            Self::Corrupt { context } => write!(f, "snapshot field {context} is invalid"),
            Self::NotExportable => {
                write!(
                    f,
                    "model does not support export (Model::export returned None)"
                )
            }
            Self::RebuildDiverged { field } => {
                write!(
                    f,
                    "rebuilt model diverges from the snapshot on {field} — snapshot written by an incompatible build"
                )
            }
            Self::Replay { line, message } => {
                write!(f, "replay log line {line} is malformed: {message}")
            }
            Self::Restore(e) => write!(f, "restoring the stream detector failed: {e}"),
            Self::Fit(e) => write!(f, "refitting the snapshot's points failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Fit(e) => Some(e),
            Self::Restore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    /// Maps a clean end-of-file to [`Truncated`](Self::Truncated) with
    /// no context; prefer the codec helpers, which attach the field
    /// being read.
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Self::Truncated { context: "input" }
        } else {
            Self::Io(e)
        }
    }
}

impl From<McCatchError> for PersistError {
    fn from(e: McCatchError) -> Self {
        Self::Fit(e)
    }
}

impl From<StreamError> for PersistError {
    fn from(e: StreamError) -> Self {
        Self::Restore(e)
    }
}
