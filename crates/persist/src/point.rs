//! The point encodings a snapshot or replay log can carry.

use crate::codec::{read_f64, read_u32, write_f64, write_u32};
use crate::error::PersistError;
use std::io::{Read, Write};

/// A point type with a stable on-disk encoding — the bound that makes a
/// model or stream persistable. Implemented for `Vec<f64>` (the vector
/// datasets of the paper's experiments) and `String` (metric-only data
/// under e.g. Levenshtein distance); the kind tag in the snapshot
/// header keeps the two from being confused.
///
/// Both forms must round-trip **bit-exactly**: the binary form writes
/// raw IEEE-754 bits, and the JSON form (used by the replay log) relies
/// on Rust's shortest round-trip float formatting.
pub trait PersistPoint: Sized {
    /// Stable one-byte tag of this encoding, recorded in the snapshot
    /// header: 1 = `f64` vector, 2 = UTF-8 string.
    const KIND: u8;

    /// Writes the binary form.
    fn write_bin<W: Write>(&self, w: &mut W) -> Result<(), PersistError>;

    /// Reads the binary form. `dim` is the snapshot header's declared
    /// uniform dimensionality: nonzero means every point must match it
    /// (else [`PersistError::DimMismatch`]); 0 means dimensionality is
    /// unconstrained.
    fn read_bin<R: Read>(r: &mut R, dim: u32) -> Result<Self, PersistError>;

    /// The uniform dimensionality of `points`, or 0 when points are
    /// ragged or non-dimensional (strings).
    fn uniform_dim(points: &[Self]) -> u32;

    /// Appends the JSON form (a JSON value, no trailing newline) — the
    /// `point` field of a replay-log line.
    fn write_json(&self, out: &mut String);

    /// Parses the JSON form produced by
    /// [`write_json`](Self::write_json).
    ///
    /// # Errors
    /// A human-readable description of the malformation (the replay
    /// reader wraps it with the line number).
    fn parse_json(s: &str) -> Result<Self, String>;
}

impl PersistPoint for Vec<f64> {
    const KIND: u8 = 1;

    fn write_bin<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        write_u32(w, self.len() as u32)?;
        for &v in self {
            write_f64(w, v)?;
        }
        Ok(())
    }

    fn read_bin<R: Read>(r: &mut R, dim: u32) -> Result<Self, PersistError> {
        let len = read_u32(r, "point length")?;
        if dim != 0 && len != dim {
            return Err(PersistError::DimMismatch {
                expected: dim,
                got: len,
            });
        }
        // Read incrementally instead of pre-allocating `len` slots: a
        // corrupt length then hits `Truncated` after the bytes actually
        // present, never a huge allocation.
        let mut point = Vec::with_capacity(len.min(4096) as usize);
        for _ in 0..len {
            point.push(read_f64(r, "point component")?);
        }
        Ok(point)
    }

    fn uniform_dim(points: &[Self]) -> u32 {
        match points.first() {
            Some(first) if points.iter().all(|p| p.len() == first.len()) => first.len() as u32,
            _ => 0,
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Rust's float Display is the shortest decimal that parses
            // back to the same bits, so the log round-trips exactly.
            // Non-finite values render as `inf`/`-inf`/`NaN` — not
            // strict JSON, but `f64::from_str` reads them back.
            out.push_str(&format!("{v}"));
        }
        out.push(']');
    }

    fn parse_json(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let inner = s
            .strip_prefix('[')
            .and_then(|rest| rest.strip_suffix(']'))
            .ok_or_else(|| "vector point is not a JSON array".to_owned())?;
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Vec::new());
        }
        inner
            .split(',')
            .map(|c| {
                c.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("bad vector component {c:?}: {e}"))
            })
            .collect()
    }
}

impl PersistPoint for String {
    const KIND: u8 = 2;

    fn write_bin<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        write_u32(w, self.len() as u32)?;
        w.write_all(self.as_bytes()).map_err(PersistError::Io)
    }

    fn read_bin<R: Read>(r: &mut R, _dim: u32) -> Result<Self, PersistError> {
        let len = read_u32(r, "string length")? as u64;
        // `take` + `read_to_end` allocates as data arrives, so a corrupt
        // huge length yields `Truncated`, not an OOM-sized allocation.
        let mut bytes = Vec::new();
        r.take(len)
            .read_to_end(&mut bytes)
            .map_err(PersistError::Io)?;
        if (bytes.len() as u64) < len {
            return Err(PersistError::Truncated {
                context: "string point bytes",
            });
        }
        String::from_utf8(bytes).map_err(|_| PersistError::Corrupt {
            context: "string point UTF-8",
        })
    }

    fn uniform_dim(_points: &[Self]) -> u32 {
        0
    }

    fn write_json(&self, out: &mut String) {
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn parse_json(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let inner = s
            .strip_prefix('"')
            .and_then(|rest| rest.strip_suffix('"'))
            .ok_or_else(|| "string point is not a JSON string".to_owned())?;
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if hex.len() != 4 {
                        return Err("truncated \\u escape".to_owned());
                    }
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u{hex}"))?;
                    let c = char::from_u32(code)
                        .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                    out.push(c);
                }
                other => return Err(format!("bad escape {other:?}")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_binary_round_trip_is_bit_exact() {
        let tricky = vec![
            0.1 + 0.2,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-308,
            f64::MAX,
        ];
        let mut buf = Vec::new();
        tricky.write_bin(&mut buf).unwrap();
        let back = Vec::<f64>::read_bin(&mut &buf[..], 0).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&tricky));
    }

    #[test]
    fn vector_json_round_trip_is_bit_exact() {
        let tricky = vec![0.1 + 0.2, -0.0, 1.0 / 3.0, 123456789.12345679, 5e-324];
        let mut json = String::new();
        tricky.write_json(&mut json);
        let back = Vec::<f64>::parse_json(&json).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&tricky));
    }

    #[test]
    fn vector_dim_enforced_when_declared() {
        let mut buf = Vec::new();
        vec![1.0, 2.0, 3.0].write_bin(&mut buf).unwrap();
        assert!(Vec::<f64>::read_bin(&mut &buf[..], 3).is_ok());
        assert!(matches!(
            Vec::<f64>::read_bin(&mut &buf[..], 2),
            Err(PersistError::DimMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn string_round_trips_binary_and_json() {
        for s in ["", "plain", "esc\"\\\n\t", "unicode: αβγ 😀", "\u{1}\u{1f}"] {
            let s = s.to_owned();
            let mut buf = Vec::new();
            s.write_bin(&mut buf).unwrap();
            assert_eq!(String::read_bin(&mut &buf[..], 0).unwrap(), s);
            let mut json = String::new();
            s.write_json(&mut json);
            assert_eq!(String::parse_json(&json).unwrap(), s);
        }
    }

    #[test]
    fn huge_declared_lengths_truncate_instead_of_allocating() {
        // length u32::MAX, no payload: must error, not OOM.
        let buf = u32::MAX.to_le_bytes();
        assert!(matches!(
            Vec::<f64>::read_bin(&mut &buf[..], 0),
            Err(PersistError::Truncated { .. })
        ));
        assert!(matches!(
            String::read_bin(&mut &buf[..], 0),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn uniform_dim_detects_ragged_data() {
        assert_eq!(
            Vec::<f64>::uniform_dim(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
            2
        );
        assert_eq!(Vec::<f64>::uniform_dim(&[vec![1.0], vec![3.0, 4.0]]), 0);
        assert_eq!(Vec::<f64>::uniform_dim(&[]), 0);
    }
}
