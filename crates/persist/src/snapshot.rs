//! The versioned binary snapshot format and its streaming writer/reader.
//!
//! A snapshot does **not** serialize tree internals. It stores the
//! model's reference points, its fully resolved hyperparameters, and the
//! index backend's name — plus the fitted summary (diameter, radius
//! grid, MDL cutoff, [`ModelStats`]) as a *witness*. Because the whole
//! MCCATCH pipeline is deterministic, [`load_model`] refits the stored
//! points with the stored parameters and backend, then verifies the
//! rebuilt summary bit-for-bit against the witness: any divergence
//! (e.g. a snapshot written by a build with different algorithm
//! behavior) is reported as [`PersistError::RebuildDiverged`] instead of
//! silently serving different scores.
//!
//! ## Layout (version 1, all integers little-endian, all `f64`s raw
//! IEEE-754 bits)
//!
//! ```text
//! magic          4 bytes   "MCSN"
//! version        u16       1
//! flags          u16       0 (reserved)
//! point_kind     u8        1 = f64 vector, 2 = UTF-8 string
//! backend        u8 len + bytes ("brute" | "kd" | "vp" | "slim" | …)
//! dim            u32       uniform dimensionality, 0 = unconstrained
//! num_points     u64
//! generation     u64       ModelStore generation at save time
//! seq            u64       stream position at save time (0 for batch)
//! params         u32 num_radii · f64 slope · u8 mc_present · u64 mc ·
//!                u32 threads
//! diameter       f64       ┐
//! cutoff_d       f64       │ the rebuild-verification witness
//! stats          u64 outliers · u64 microclusters · u64 distance_evals
//!                · u8 degenerate                   │
//! radii          num_radii × f64                   ┘
//! points         num_points × point encoding (see `PersistPoint`)
//! checksum       u32       CRC-32 (IEEE) of every preceding byte
//! ```

use crate::codec::{
    read_exact_n, read_f64, read_u16, read_u32, read_u64, read_u8, write_f64, write_u16, write_u32,
    write_u64, write_u8, ChecksumReader, ChecksumWriter,
};
use crate::error::PersistError;
use crate::point::PersistPoint;
use mccatch_core::{Fitted, McCatch, Model, ModelStats, Params, RadiusGrid};
use mccatch_index::IndexBuilder;
use mccatch_metric::Metric;
use std::io::{Read, Write};

/// The snapshot magic bytes.
pub const MAGIC: [u8; 4] = *b"MCSN";

/// The snapshot format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

/// Header metadata of a snapshot, as returned by [`read_info`] (and
/// carried inside [`LoadedModel`]): what an operator endpoint shows
/// without paying for a full load-and-rebuild.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotInfo {
    /// Format version of the file.
    pub version: u16,
    /// Point-encoding tag (see [`PersistPoint::KIND`]).
    pub point_kind: u8,
    /// Index backend the model was fitted with.
    pub backend: String,
    /// Uniform dimensionality of the points (0 = unconstrained).
    pub dim: u32,
    /// Number of reference points.
    pub num_points: u64,
    /// Model generation at save time.
    pub generation: u64,
    /// Stream position (events accepted) at save time; 0 for snapshots
    /// of batch fits.
    pub seq: u64,
    /// The fitted diameter estimate `l`.
    pub diameter: f64,
    /// The fitted MDL cutoff distance `d`.
    pub cutoff_d: f64,
}

/// Everything [`load_model`] recovers from a snapshot: the rebuilt (and
/// verified) fit, plus the generation and stream position to resume at.
pub struct LoadedModel<P, M, B>
where
    P: Sync,
    M: Metric<P>,
    B: IndexBuilder<P, M>,
{
    /// The rebuilt model — bit-identical to the one that was saved
    /// (verified against the snapshot's witness fields).
    pub fitted: Fitted<P, M, B>,
    /// The generation counter to resume from.
    pub generation: u64,
    /// The stream position to resume from.
    pub seq: u64,
    /// The snapshot's header metadata.
    pub info: SnapshotInfo,
}

impl<P, M, B> std::fmt::Debug for LoadedModel<P, M, B>
where
    P: Sync,
    M: Metric<P>,
    B: IndexBuilder<P, M>,
{
    /// Cheap on purpose: the header metadata, never the model.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedModel")
            .field("generation", &self.generation)
            .field("seq", &self.seq)
            .field("info", &self.info)
            .finish_non_exhaustive()
    }
}

/// Serializes `model` (with the given generation and stream position)
/// to `w`, returning the total bytes written. Works on any exportable
/// [`Model`] — concrete [`Fitted`] handles via [`Fitted::export`],
/// erased `Arc<dyn Model<P>>` snapshots via [`Model::export`].
///
/// # Errors
/// [`PersistError::NotExportable`] if the model does not expose its
/// reference points, or reports a summary no valid fit can have;
/// [`PersistError::Io`] on write failure.
pub fn save_model<P: PersistPoint, W: Write>(
    model: &dyn Model<P>,
    generation: u64,
    seq: u64,
    w: W,
) -> Result<u64, PersistError> {
    let _span = mccatch_obs::Span::enter("persist_save");
    let export = model.export().ok_or(PersistError::NotExportable)?;
    let stats = model.stats();
    // An exportable model always has a well-formed grid; a third-party
    // impl reporting otherwise cannot be round-tripped faithfully.
    if stats.num_radii < 2
        || stats.num_radii != export.params.num_radii
        || stats.diameter.is_nan()
        || stats.diameter < 0.0
        || stats.num_points != export.points.len()
        || export.backend.len() > u8::MAX as usize
    {
        return Err(PersistError::NotExportable);
    }
    // The grid is a pure function of (diameter, num_radii); this agrees
    // bit-for-bit with the fitted grid, so no separate accessor needed.
    let grid = RadiusGrid::new(stats.diameter, stats.num_radii);
    let dim = P::uniform_dim(&export.points);

    let mut cw = ChecksumWriter::new(w);
    cw.write_all(&MAGIC).map_err(PersistError::Io)?;
    write_u16(&mut cw, FORMAT_VERSION)?;
    write_u16(&mut cw, 0)?; // flags, reserved
    write_u8(&mut cw, P::KIND)?;
    write_u8(&mut cw, export.backend.len() as u8)?;
    cw.write_all(export.backend.as_bytes())
        .map_err(PersistError::Io)?;
    write_u32(&mut cw, dim)?;
    write_u64(&mut cw, export.points.len() as u64)?;
    write_u64(&mut cw, generation)?;
    write_u64(&mut cw, seq)?;
    write_u32(&mut cw, export.params.num_radii as u32)?;
    write_f64(&mut cw, export.params.max_plateau_slope)?;
    match export.params.max_mc_cardinality {
        Some(c) => {
            write_u8(&mut cw, 1)?;
            write_u64(&mut cw, c as u64)?;
        }
        None => {
            write_u8(&mut cw, 0)?;
            write_u64(&mut cw, 0)?;
        }
    }
    write_u32(&mut cw, export.params.threads as u32)?;
    write_f64(&mut cw, stats.diameter)?;
    write_f64(&mut cw, stats.cutoff_d)?;
    write_u64(&mut cw, stats.num_outliers as u64)?;
    write_u64(&mut cw, stats.num_microclusters as u64)?;
    write_u64(&mut cw, stats.distance_evals)?;
    write_u8(&mut cw, stats.degenerate as u8)?;
    for &r in grid.radii() {
        write_f64(&mut cw, r)?;
    }
    for p in export.points.iter() {
        p.write_bin(&mut cw)?;
    }
    let (mut w, crc, bytes) = cw.finish();
    w.write_all(&crc.to_le_bytes()).map_err(PersistError::Io)?;
    w.flush().map_err(PersistError::Io)?;
    Ok(bytes + 4)
}

/// Reads the header fields only — cheap metadata for an info endpoint.
/// Stops before the points, so the checksum is **not** verified; only a
/// full [`load_model`] certifies integrity.
pub fn read_info<R: Read>(r: R) -> Result<SnapshotInfo, PersistError> {
    let mut cr = ChecksumReader::new(r);
    let (info, _, _) = read_header(&mut cr)?;
    Ok(info)
}

/// Parses everything up to (and including) the stats witness.
fn read_header<R: Read>(
    cr: &mut ChecksumReader<R>,
) -> Result<(SnapshotInfo, Params, ModelStats), PersistError> {
    let mut magic = [0u8; 4];
    read_exact_n(cr, &mut magic, "magic")?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic { got: magic });
    }
    let version = read_u16(cr, "version")?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { got: version });
    }
    let flags = read_u16(cr, "flags")?;
    if flags != 0 {
        return Err(PersistError::Corrupt { context: "flags" });
    }
    let point_kind = read_u8(cr, "point kind")?;
    let backend_len = read_u8(cr, "backend name length")?;
    let mut backend_bytes = vec![0u8; backend_len as usize];
    read_exact_n(cr, &mut backend_bytes, "backend name")?;
    let backend = String::from_utf8(backend_bytes).map_err(|_| PersistError::Corrupt {
        context: "backend name UTF-8",
    })?;
    let dim = read_u32(cr, "dim")?;
    let num_points = read_u64(cr, "num_points")?;
    let generation = read_u64(cr, "generation")?;
    let seq = read_u64(cr, "seq")?;
    let num_radii = read_u32(cr, "num_radii")? as usize;
    let max_plateau_slope = read_f64(cr, "max_plateau_slope")?;
    let max_mc_cardinality = match read_u8(cr, "mc_cardinality presence")? {
        0 => {
            read_u64(cr, "mc_cardinality")?;
            None
        }
        1 => Some(read_u64(cr, "mc_cardinality")? as usize),
        _ => {
            return Err(PersistError::Corrupt {
                context: "mc_cardinality presence",
            })
        }
    };
    let threads = read_u32(cr, "threads")? as usize;
    let diameter = read_f64(cr, "diameter")?;
    let cutoff_d = read_f64(cr, "cutoff_d")?;
    let num_outliers = read_u64(cr, "num_outliers")? as usize;
    let num_microclusters = read_u64(cr, "num_microclusters")? as usize;
    let distance_evals = read_u64(cr, "distance_evals")?;
    let degenerate = match read_u8(cr, "degenerate")? {
        0 => false,
        1 => true,
        _ => {
            return Err(PersistError::Corrupt {
                context: "degenerate",
            })
        }
    };
    let info = SnapshotInfo {
        version,
        point_kind,
        backend,
        dim,
        num_points,
        generation,
        seq,
        diameter,
        cutoff_d,
    };
    let params = Params {
        num_radii,
        max_plateau_slope,
        max_mc_cardinality,
        threads,
    };
    let stats = ModelStats {
        num_points: num_points as usize,
        diameter,
        num_radii,
        cutoff_d,
        num_outliers,
        num_microclusters,
        distance_evals,
        degenerate,
    };
    Ok((info, params, stats))
}

/// A fully decoded (checksum-verified) snapshot, before the rebuild.
struct RawSnapshot<P> {
    info: SnapshotInfo,
    params: Params,
    stats: ModelStats,
    radii: Vec<f64>,
    points: Vec<P>,
}

fn read_raw<P: PersistPoint, R: Read>(r: R) -> Result<RawSnapshot<P>, PersistError> {
    let mut cr = ChecksumReader::new(r);
    let (info, params, stats) = read_header(&mut cr)?;
    if info.point_kind != P::KIND {
        return Err(PersistError::PointKindMismatch {
            expected: P::KIND,
            got: info.point_kind,
        });
    }
    // Incremental allocation throughout: corrupt counts run into
    // `Truncated` after the bytes actually present, never an OOM-sized
    // reservation.
    let mut radii = Vec::with_capacity(params.num_radii.min(4096));
    for _ in 0..params.num_radii {
        radii.push(read_f64(&mut cr, "radius")?);
    }
    let mut points = Vec::with_capacity((info.num_points as usize).min(4096));
    for _ in 0..info.num_points {
        points.push(P::read_bin(&mut cr, info.dim)?);
    }
    let computed = cr.crc();
    let expected = read_u32(cr.inner_mut(), "checksum")?;
    if expected != computed {
        return Err(PersistError::ChecksumMismatch {
            expected,
            got: computed,
        });
    }
    Ok(RawSnapshot {
        info,
        params,
        stats,
        radii,
        points,
    })
}

/// Deserializes a snapshot from `r` and rebuilds the model by refitting
/// the stored points with the stored parameters, the supplied `metric`,
/// and the supplied `builder` — then verifies the rebuilt diameter,
/// radius grid, cutoff, and [`ModelStats`] bit-for-bit against the
/// snapshot's witness fields. On success the returned fit is guaranteed
/// to produce byte-identical scores, top-k, and cutoff to the model
/// that was saved.
///
/// The `builder` must be of the same index family the snapshot was
/// fitted with ([`PersistError::BackendMismatch`] otherwise); its
/// tuning knobs (leaf capacities etc.) must also match for the
/// verification to pass, since tree shape determines the diameter
/// estimate. The metric is not recorded in the snapshot — supplying a
/// different metric than at save time is caught by the same
/// verification whenever it changes any distance.
pub fn load_model<P, M, B, R>(
    r: R,
    metric: M,
    builder: B,
) -> Result<LoadedModel<P, M, B>, PersistError>
where
    P: PersistPoint + Send + Sync,
    M: Metric<P>,
    B: IndexBuilder<P, M>,
    R: Read,
{
    let _span = mccatch_obs::Span::enter("persist_load");
    let raw = read_raw::<P, R>(r)?;
    if builder.backend_name() != raw.info.backend {
        return Err(PersistError::BackendMismatch {
            expected: builder.backend_name().to_owned(),
            got: raw.info.backend,
        });
    }
    let mccatch = McCatch::new(raw.params)?;
    let fitted = mccatch.fit(raw.points, metric, builder)?;
    verify_stats(&fitted.stats(), &raw.stats)?;
    let rebuilt_radii = fitted.radii();
    if rebuilt_radii.len() != raw.radii.len()
        || rebuilt_radii
            .iter()
            .zip(&raw.radii)
            .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err(PersistError::RebuildDiverged {
            field: "radius grid",
        });
    }
    Ok(LoadedModel {
        fitted,
        generation: raw.info.generation,
        seq: raw.info.seq,
        info: raw.info,
    })
}

/// Field-by-field witness comparison, floats by raw bits so `-0.0`,
/// infinities, and NaNs are compared exactly.
fn verify_stats(rebuilt: &ModelStats, stored: &ModelStats) -> Result<(), PersistError> {
    let diverged = |field| Err(PersistError::RebuildDiverged { field });
    if rebuilt.num_points != stored.num_points {
        return diverged("num_points");
    }
    if rebuilt.diameter.to_bits() != stored.diameter.to_bits() {
        return diverged("diameter");
    }
    if rebuilt.num_radii != stored.num_radii {
        return diverged("num_radii");
    }
    if rebuilt.cutoff_d.to_bits() != stored.cutoff_d.to_bits() {
        return diverged("cutoff_d");
    }
    if rebuilt.num_outliers != stored.num_outliers {
        return diverged("num_outliers");
    }
    if rebuilt.num_microclusters != stored.num_microclusters {
        return diverged("num_microclusters");
    }
    if rebuilt.distance_evals != stored.distance_evals {
        return diverged("distance_evals");
    }
    if rebuilt.degenerate != stored.degenerate {
        return diverged("degenerate");
    }
    Ok(())
}
