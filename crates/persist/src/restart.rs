//! Warm-restart glue: one-call save/load for the serving
//! [`ModelStore`] and the streaming [`StreamDetector`], built on the
//! snapshot codec and the replay log.

use crate::error::PersistError;
use crate::point::PersistPoint;
use crate::replay::ReplayEntry;
use crate::snapshot::{load_model, save_model, SnapshotInfo};
use mccatch_core::{McCatch, ModelStore};
use mccatch_index::IndexBuilder;
use mccatch_metric::Metric;
use mccatch_stream::{StreamCheckpoint, StreamConfig, StreamDetector};
use std::io::{Read, Write};

/// Serializes the store's current model — tagged with its generation
/// and the caller's stream position `seq` — to `w`. Returns the bytes
/// written.
pub fn save_store<P: PersistPoint, W: Write>(
    store: &ModelStore<P>,
    seq: u64,
    w: W,
) -> Result<u64, PersistError> {
    let (model, generation) = store.snapshot_tagged();
    save_model(model.as_ref(), generation, seq, w)
}

/// What [`load_store`] recovers: a serving store resuming the saved
/// generation, plus the stream position and header metadata.
#[derive(Debug)]
pub struct LoadedStore<P> {
    /// A store whose current model is the verified rebuild and whose
    /// generation counter resumes where the snapshot left off.
    pub store: ModelStore<P>,
    /// The stream position recorded at save time.
    pub seq: u64,
    /// The snapshot's header metadata.
    pub info: SnapshotInfo,
}

/// Rebuilds a serving [`ModelStore`] from a snapshot (see
/// [`load_model`] for the verification contract).
pub fn load_store<P, M, B, R>(r: R, metric: M, builder: B) -> Result<LoadedStore<P>, PersistError>
where
    P: PersistPoint + Send + Sync + 'static,
    M: Metric<P> + 'static,
    B: IndexBuilder<P, M> + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
    R: Read,
{
    let loaded = load_model(r, metric, builder)?;
    Ok(LoadedStore {
        seq: loaded.seq,
        info: loaded.info.clone(),
        store: ModelStore::with_generation(loaded.fitted.into_model(), loaded.generation),
    })
}

/// Captures a consistent checkpoint of a running [`StreamDetector`]
/// (model, generation, stream position) and serializes it to `w`.
/// Returns the bytes written.
///
/// The retained window itself is not in the snapshot — that is the
/// replay log's job (or, failing that, the seed-from-reference-points
/// fallback in [`restore_stream`]).
pub fn checkpoint_stream<P, M, B, W>(
    detector: &StreamDetector<P, M, B>,
    w: W,
) -> Result<u64, PersistError>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
    W: Write,
{
    let cp = detector.checkpoint();
    save_model(cp.model.as_ref(), cp.generation, cp.seq, w)
}

/// Rebuilds a [`StreamDetector`] from a snapshot, resuming the saved
/// generation and stream position without an initial refit.
///
/// The sliding window comes from `replay` when one is supplied
/// (typically [`ReplayReader::read_all`](crate::ReplayReader::read_all)
/// on the ingest log): the newest `config.capacity` logged events are
/// replayed as real ingested events, and `seq` additionally advances
/// past the last logged event, covering events accepted after the
/// snapshot was taken. Without a replay log the window is approximated
/// by the model's reference points re-marked as seeds "at stream
/// start" — scoring is still bit-identical (the model is), but
/// age-based eviction restarts from the first post-restart tick.
pub fn restore_stream<P, M, B, R>(
    config: StreamConfig,
    metric: M,
    index_builder: B,
    snapshot: R,
    replay: Option<Vec<ReplayEntry<P>>>,
) -> Result<(StreamDetector<P, M, B>, SnapshotInfo), PersistError>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
    R: Read,
{
    let loaded = load_model(snapshot, metric.clone(), index_builder.clone())?;
    let export = loaded.fitted.export();
    let unfitted = McCatch::new(export.params)?;
    let info = loaded.info.clone();
    let (entries, entries_are_seed, seq) = match replay {
        Some(logged) => {
            let next_seq = logged.last().map_or(0, |e| e.seq + 1);
            let start = logged.len().saturating_sub(config.capacity);
            let entries: Vec<(u64, P)> = logged
                .into_iter()
                .skip(start)
                .map(|e| (e.tick, e.point))
                .collect();
            (entries, false, loaded.seq.max(next_seq))
        }
        None => {
            let entries: Vec<(u64, P)> = export.points.iter().cloned().map(|p| (0u64, p)).collect();
            let n = entries.len() as u64;
            (entries, true, loaded.seq.max(n))
        }
    };
    let checkpoint = StreamCheckpoint {
        model: loaded.fitted.into_model(),
        generation: loaded.generation,
        seq,
        entries,
        entries_are_seed,
    };
    let detector = StreamDetector::restore(config, unfitted, metric, index_builder, checkpoint)?;
    Ok((detector, info))
}
