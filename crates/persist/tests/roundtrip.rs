//! The persistence correctness gate: a snapshot round trip is
//! **bit-identical** on every index backend.
//!
//! For random datasets, `save_model` → `load_model` must reproduce the
//! exact fitted model: same `ModelStats` to the bit, same radius grid,
//! same `score_batch` bits on fresh queries, same `top_k`, same
//! `score_cutoff`. The same contract is property-checked for the
//! serving-store and streaming-detector glue, including window recovery
//! through the replay log.

use mccatch_core::{McCatch, Model, ModelStats, Params};
use mccatch_index::{
    BruteForceBuilder, IndexBuilder, KdTreeBuilder, SlimTreeBuilder, VpTreeBuilder,
};
use mccatch_metric::{Euclidean, Levenshtein};
use mccatch_persist::{
    load_model, load_store, read_info, restore_stream, save_model, save_store, FsyncPolicy,
    PersistError, ReplayReader, ReplayWriter,
};
use mccatch_stream::{RefitPolicy, StreamConfig, StreamDetector};
use proptest::prelude::*;

fn datasets() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<Vec<f64>>)> {
    let point = prop::collection::vec(-100.0..100.0f64, 3);
    (
        prop::collection::vec(point.clone(), 8..80),
        prop::collection::vec(point, 1..10),
    )
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_stats_bit_equal(a: &ModelStats, b: &ModelStats) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.num_points, b.num_points);
    prop_assert_eq!(a.diameter.to_bits(), b.diameter.to_bits());
    prop_assert_eq!(a.num_radii, b.num_radii);
    prop_assert_eq!(a.cutoff_d.to_bits(), b.cutoff_d.to_bits());
    prop_assert_eq!(a.num_outliers, b.num_outliers);
    prop_assert_eq!(a.num_microclusters, b.num_microclusters);
    prop_assert_eq!(a.distance_evals, b.distance_evals);
    prop_assert_eq!(a.degenerate, b.degenerate);
    Ok(())
}

/// Fit → save → load on one backend; every observable output must come
/// back bit-identical.
fn assert_round_trip<B>(
    builder: B,
    points: &[Vec<f64>],
    queries: &[Vec<f64>],
) -> Result<(), TestCaseError>
where
    B: IndexBuilder<Vec<f64>, Euclidean> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let fitted = McCatch::new(Params::default())
        .expect("defaults are valid")
        .fit(points.to_vec(), Euclidean, builder.clone())
        .expect("fit");

    let mut buf = Vec::new();
    let bytes = save_model(&fitted, 3, 41, &mut buf).expect("save");
    prop_assert_eq!(bytes as usize, buf.len());

    let info = read_info(&buf[..]).expect("info");
    prop_assert_eq!(info.num_points as usize, points.len());
    prop_assert_eq!(info.generation, 3);
    prop_assert_eq!(info.seq, 41);
    prop_assert_eq!(&info.backend, builder.backend_name());

    let loaded = load_model(&buf[..], Euclidean, builder).expect("load");
    prop_assert_eq!(loaded.generation, 3);
    prop_assert_eq!(loaded.seq, 41);

    assert_stats_bit_equal(&fitted.stats(), &loaded.fitted.stats())?;
    prop_assert_eq!(
        bits(&fitted.score_batch(queries)),
        bits(&loaded.fitted.score_batch(queries))
    );
    prop_assert_eq!(
        fitted.score_cutoff().to_bits(),
        loaded.fitted.score_cutoff().to_bits()
    );
    prop_assert_eq!(fitted.top_k(5), loaded.fitted.top_k(5));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn round_trip_is_bit_identical_on_all_backends((points, queries) in datasets()) {
        assert_round_trip(BruteForceBuilder, &points, &queries)?;
        assert_round_trip(KdTreeBuilder::default(), &points, &queries)?;
        assert_round_trip(VpTreeBuilder::default(), &points, &queries)?;
        assert_round_trip(SlimTreeBuilder::default(), &points, &queries)?;
    }

    #[test]
    fn store_round_trip_resumes_generation_and_seq((points, queries) in datasets()) {
        let fitted = McCatch::new(Params::default()).unwrap()
            .fit(points, Euclidean, VpTreeBuilder::default()).unwrap();
        let expected = bits(&fitted.score_batch(&queries));
        let store = mccatch_core::ModelStore::with_generation(fitted.into_model(), 9);

        let mut buf = Vec::new();
        save_store(&store, 1234, &mut buf).expect("save_store");
        let loaded = load_store(&buf[..], Euclidean, VpTreeBuilder::default())
            .expect("load_store");
        prop_assert_eq!(loaded.store.generation(), 9);
        prop_assert_eq!(loaded.seq, 1234);
        prop_assert_eq!(bits(&loaded.store.score_batch(&queries)), expected);
    }
}

#[test]
fn string_models_round_trip_bit_identically() {
    let data = mccatch_data::fingerprints(40, 6, 7).points;
    let fitted = McCatch::new(Params::default())
        .unwrap()
        .fit(data.clone(), Levenshtein, BruteForceBuilder)
        .unwrap();
    let mut buf = Vec::new();
    save_model(&fitted, 0, 0, &mut buf).unwrap();
    let loaded = load_model::<String, _, _, _>(&buf[..], Levenshtein, BruteForceBuilder).unwrap();
    assert_eq!(
        bits(&fitted.score_batch(&data)),
        bits(&loaded.fitted.score_batch(&data))
    );
    assert_eq!(fitted.top_k(3), loaded.fitted.top_k(3));
}

#[test]
fn backend_mismatch_is_refused() {
    let points: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64, (i % 5) as f64]).collect();
    let fitted = McCatch::new(Params::default())
        .unwrap()
        .fit(points, Euclidean, KdTreeBuilder::default())
        .unwrap();
    let mut buf = Vec::new();
    save_model(&fitted, 0, 0, &mut buf).unwrap();
    let err =
        load_model::<Vec<f64>, _, _, _>(&buf[..], Euclidean, VpTreeBuilder::default()).unwrap_err();
    assert!(matches!(err, PersistError::BackendMismatch { .. }), "{err}");
}

#[test]
fn point_kind_mismatch_is_refused() {
    let points: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
    let fitted = McCatch::new(Params::default())
        .unwrap()
        .fit(points, Euclidean, BruteForceBuilder)
        .unwrap();
    let mut buf = Vec::new();
    save_model(&fitted, 0, 0, &mut buf).unwrap();
    let err = load_model::<String, _, _, _>(&buf[..], Levenshtein, BruteForceBuilder).unwrap_err();
    assert!(
        matches!(
            err,
            PersistError::PointKindMismatch {
                expected: 2,
                got: 1
            }
        ),
        "{err}"
    );
}

/// Kill-and-restart for the streaming path: checkpoint a live detector,
/// write its replay log, rebuild from both, and demand bit-identical
/// scoring plus resumed generation/seq/window.
#[test]
fn stream_checkpoint_restores_through_replay_log() {
    let dir = std::env::temp_dir().join(format!("mccatch-persist-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("ingest.ndjson");
    let _ = std::fs::remove_file(&log_path);

    let config = StreamConfig {
        capacity: 48,
        policy: RefitPolicy::Manual,
        ..StreamConfig::default()
    };
    let seed: Vec<Vec<f64>> = (0..48)
        .map(|i| vec![(i % 12) as f64, (i % 7) as f64])
        .collect();
    let detector = McCatch::new(Params::default()).unwrap();
    let stream = StreamDetector::new(
        config.clone(),
        detector,
        Euclidean,
        SlimTreeBuilder::default(),
        seed.clone(),
    )
    .unwrap();

    // Log the seed (at tick 0) and every subsequent event, exactly as a
    // serving process would.
    let mut log = ReplayWriter::open(&log_path, FsyncPolicy::EveryN(8)).unwrap();
    for (i, p) in seed.iter().enumerate() {
        log.append(i as u64, 0, p).unwrap();
    }
    for i in 0..40u64 {
        let p = vec![(i % 9) as f64 + 0.5, (i % 4) as f64];
        let ev = stream.ingest(p.clone());
        log.append(ev.seq, ev.tick, &p).unwrap();
    }
    stream.refit_now().unwrap();
    log.sync().unwrap();

    let mut snapshot = Vec::new();
    mccatch_persist::checkpoint_stream(&stream, &mut snapshot).unwrap();

    let queries: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.7, 2.0]).collect();
    let expected: Vec<u64> = queries.iter().map(|q| stream.score(q).to_bits()).collect();
    let expected_window = stream.window_points();
    let gen_before = stream.generation();
    let next_ev = stream.ingest(vec![100.0, 100.0]);
    let expected_next_seq = next_ev.seq;
    drop(stream);

    // "Restart": rebuild purely from the snapshot bytes + the log file.
    let entries = ReplayReader::open(&log_path)
        .unwrap()
        .read_all::<Vec<f64>>()
        .unwrap();
    let (restored, info) = restore_stream(
        config,
        Euclidean,
        SlimTreeBuilder::default(),
        &snapshot[..],
        Some(entries),
    )
    .unwrap();
    assert_eq!(info.generation, gen_before);
    assert_eq!(restored.generation(), gen_before);

    let got: Vec<u64> = queries
        .iter()
        .map(|q| restored.score(q).to_bits())
        .collect();
    assert_eq!(got, expected, "restored scores must be bit-identical");
    assert_eq!(restored.window_points(), expected_window);
    // The event ingested after the checkpoint was in the log's future;
    // seq numbering continues without reuse.
    let ev = restored.ingest(vec![100.0, 100.0]);
    assert_eq!(ev.seq, expected_next_seq);

    std::fs::remove_dir_all(&dir).ok();
}

/// Without a replay log the window is approximated from the model's
/// reference points — scoring must still be bit-identical.
#[test]
fn stream_restore_without_log_scores_identically() {
    let points: Vec<Vec<f64>> = (0..40)
        .map(|i| vec![(i % 8) as f64, i as f64 / 10.0])
        .collect();
    let fitted = McCatch::new(Params::default())
        .unwrap()
        .fit(points.clone(), Euclidean, KdTreeBuilder::default())
        .unwrap();
    let expected: Vec<u64> = points
        .iter()
        .map(|p| fitted.score_one(p).to_bits())
        .collect();

    let mut snapshot = Vec::new();
    save_model(&fitted, 2, 40, &mut snapshot).unwrap();

    let config = StreamConfig {
        capacity: 64,
        policy: RefitPolicy::Manual,
        ..StreamConfig::default()
    };
    let (restored, _) = restore_stream(
        config,
        Euclidean,
        KdTreeBuilder::default(),
        &snapshot[..],
        None,
    )
    .unwrap();
    assert_eq!(restored.generation(), 2);
    let got: Vec<u64> = points.iter().map(|p| restored.score(p).to_bits()).collect();
    assert_eq!(got, expected);
    assert_eq!(restored.window_points(), points);
}
