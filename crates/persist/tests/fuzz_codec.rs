//! Fuzz-style hardening gate for the snapshot codec: whatever bytes an
//! attacker, a bad disk, or a torn write hands `load_model`, the
//! outcome is a **typed [`PersistError`]** — never a panic, never an
//! attacker-sized allocation.
//!
//! A valid snapshot is built once, then property-tested under random
//! truncations, random single-byte corruptions, and header rewrites.
//! Where the damaged field is known, the test demands the *specific*
//! error variant, not just "some error".

use mccatch_core::{McCatch, Params};
use mccatch_index::VpTreeBuilder;
use mccatch_metric::Euclidean;
use mccatch_persist::{
    load_model, read_info, save_model, PersistError, ReplayReader, FORMAT_VERSION,
};
use proptest::prelude::*;

/// One deterministic, known-good snapshot all cases mutate.
fn valid_snapshot() -> Vec<u8> {
    let points: Vec<Vec<f64>> = (0..48)
        .map(|i| vec![(i % 11) as f64, (i % 6) as f64 * 0.5])
        .collect();
    let fitted = McCatch::new(Params::default())
        .unwrap()
        .fit(points, Euclidean, VpTreeBuilder::default())
        .unwrap();
    let mut buf = Vec::new();
    save_model(&fitted, 1, 48, &mut buf).unwrap();
    buf
}

fn try_load(bytes: &[u8]) -> Result<(), PersistError> {
    load_model::<Vec<f64>, _, _, _>(bytes, Euclidean, VpTreeBuilder::default()).map(|_| ())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any proper prefix fails with `Truncated` (body cut) or
    /// `ChecksumMismatch` (only the CRC trailer cut short enough that
    /// body bytes get misread as the trailer) — and never panics.
    #[test]
    fn truncation_yields_truncated_or_checksum_error(cut in 0usize..1000) {
        let full = valid_snapshot();
        let cut = cut % full.len(); // every prefix length reachable
        let err = try_load(&full[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. }
            ),
            "prefix of {cut} bytes gave unexpected error: {err}"
        );
    }

    /// Any single-bit corruption is caught: typically by the CRC, or —
    /// when the flipped byte is in a field validated before the body is
    /// consumed — by that field's own typed error. Loading must never
    /// succeed and never panic.
    #[test]
    fn single_byte_corruption_never_loads_and_never_panics(
        pos in 0usize..1000,
        flip in (1u16..256).prop_map(|v| v as u8),
    ) {
        let mut bytes = valid_snapshot();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        let err = try_load(&bytes).unwrap_err();
        prop_assert!(
            !matches!(err, PersistError::NotExportable | PersistError::Replay { .. }),
            "corruption at byte {pos} gave an implausible error: {err}"
        );
    }

    /// Garbage that does not even start with the magic is `BadMagic`.
    #[test]
    fn arbitrary_garbage_is_bad_magic_or_truncated(
        bytes in prop::collection::vec((0u16..256).prop_map(|v| v as u8), 0..64)
    ) {
        prop_assume!(!bytes.starts_with(b"MCSN"));
        let err = try_load(&bytes).unwrap_err();
        prop_assert!(
            matches!(err, PersistError::BadMagic { .. } | PersistError::Truncated { .. }),
            "garbage gave unexpected error: {err}"
        );
    }

    /// Replay-log garbage is similarly typed: interior malformed lines
    /// are `Replay { line, .. }`, and parsing never panics.
    #[test]
    fn replay_garbage_is_typed(text in "[ -~\n]{0,200}") {
        match ReplayReader::new(text.as_bytes()).read_all::<Vec<f64>>() {
            Ok(_) => {}
            Err(PersistError::Replay { line, .. }) => prop_assert!(line >= 1),
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
    }
}

#[test]
fn wrong_magic_is_refused() {
    let mut bytes = valid_snapshot();
    bytes[..4].copy_from_slice(b"NSCM");
    assert!(matches!(
        try_load(&bytes).unwrap_err(),
        PersistError::BadMagic {
            got: [b'N', b'S', b'C', b'M']
        }
    ));
}

#[test]
fn future_version_is_refused_with_unsupported_version() {
    let mut bytes = valid_snapshot();
    // The version is the u16 right after the 4-byte magic.
    bytes[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let err = try_load(&bytes).unwrap_err();
    assert!(
        matches!(err, PersistError::UnsupportedVersion { got } if got == FORMAT_VERSION + 1),
        "{err}"
    );
    // `read_info` applies the same gate.
    let err = read_info(&bytes[..]).unwrap_err();
    assert!(matches!(err, PersistError::UnsupportedVersion { .. }));
}

#[test]
fn reserved_flag_bits_are_refused() {
    let mut bytes = valid_snapshot();
    // Flags are the u16 right after the version.
    bytes[6] = 0x01;
    assert!(matches!(
        try_load(&bytes).unwrap_err(),
        PersistError::Corrupt { context: "flags" }
    ));
}

/// A declared point count in the billions with no matching payload must
/// fail fast as `Truncated` — allocation is driven by bytes present,
/// not by the header's claim.
#[test]
fn huge_declared_point_count_does_not_allocate() {
    let full = valid_snapshot();
    // num_points is the u64 following magic(4) + version(2) + flags(2) +
    // point_kind(1) + backend_len(1) + backend("vp" = 2) + dim(4).
    let off = 4 + 2 + 2 + 1 + 1 + 2 + 4;
    let mut bytes = full.clone();
    bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = try_load(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            PersistError::Truncated { .. } | PersistError::DimMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn checksum_guards_the_body() {
    let mut bytes = valid_snapshot();
    // Flip a bit deep in the body (a stored point), past every header
    // validation: only the CRC can catch it.
    let mid = bytes.len() - 20;
    bytes[mid] ^= 0x40;
    assert!(matches!(
        try_load(&bytes).unwrap_err(),
        PersistError::ChecksumMismatch { .. }
    ));
}
