//! `mccatch` — command-line microcluster detection.
//!
//! Reads a dataset from a file (or stdin) and prints the ranked
//! microclusters plus, optionally, per-point scores. Two input modes:
//!
//! * `--mode csv` (default): one point per line, comma/whitespace-
//!   separated floats; Euclidean distance over a kd-tree.
//! * `--mode lines`: one string per line; Levenshtein distance over a
//!   Slim-tree (the paper's "L-Edit" setup for names).
//!
//! ```text
//! USAGE:
//!   mccatch [--input FILE] [--mode csv|lines] [--format text|json]
//!           [--radii 15] [--slope 0.1] [--max-card N] [--threads N]
//!           [--points] [--top K]
//! ```
//!
//! `--format json` emits a single machine-readable JSON object
//! (hand-rolled serializer, no dependencies) for downstream pipelines.
//!
//! Invalid hyperparameters are reported as proper CLI errors (exit code
//! 1), never panics: parsing builds a `McCatch` via the validating
//! builder and forwards its `McCatchError` as the error message.
//!
//! Internally the CLI drives the type-erased serving handle
//! (`Arc<dyn Model<_>>`), so both input modes share one report path
//! regardless of metric and index type.

use mccatch::index::{KdTreeBuilder, SlimTreeBuilder};
use mccatch::metrics::{Euclidean, Levenshtein};
use mccatch::{McCatch, McCatchOutput, Model, Params};
use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

struct Cli {
    input: Option<String>,
    mode: String,
    format: Format,
    params: Params,
    show_points: bool,
    /// Number of microclusters to print; 0 means all.
    top: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        input: None,
        mode: "csv".to_owned(),
        format: Format::Text,
        params: Params::default(),
        show_points: false,
        top: 20,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "--input" | "-i" => cli.input = Some(need("--input")?),
            "--mode" | "-m" => cli.mode = need("--mode")?,
            "--format" | "-f" => {
                cli.format = match need("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format: {other} (use text|json)")),
                }
            }
            "--radii" | "-a" => {
                cli.params.num_radii = need("--radii")?
                    .parse()
                    .map_err(|e| format!("--radii: {e}"))?
            }
            "--slope" | "-b" => {
                cli.params.max_plateau_slope = need("--slope")?
                    .parse()
                    .map_err(|e| format!("--slope: {e}"))?
            }
            "--max-card" | "-c" => {
                cli.params.max_mc_cardinality = Some(
                    need("--max-card")?
                        .parse()
                        .map_err(|e| format!("--max-card: {e}"))?,
                )
            }
            "--threads" | "-j" => {
                cli.params.threads = need("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--points" | "-p" => cli.show_points = true,
            "--top" | "-t" => {
                cli.top = need("--top")?.parse().map_err(|e| format!("--top: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "mccatch: microcluster detection (MCCATCH, ICDE 2024)\n\n\
                     usage: mccatch [--input FILE] [--mode csv|lines] [--format text|json]\n\
                            [--radii 15] [--slope 0.1] [--max-card N] [--threads N]\n\
                            [--points] [--top K]\n\n\
                     csv mode:   one point per line, comma/whitespace separated floats\n\
                     lines mode: one string per line, Levenshtein distance\n\n\
                     --format json emits one machine-readable JSON object\n\
                     --threads 0 (default) uses all cores; results never depend on it\n\
                     --top 0 prints all microclusters"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(cli)
}

fn read_input(input: &Option<String>) -> Result<String, String> {
    match input {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}")),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("stdin: {e}"))?;
            Ok(buf)
        }
    }
}

fn parse_csv(text: &str) -> Result<Vec<Vec<f64>>, String> {
    let mut points: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let coords: Result<Vec<f64>, _> = line
            .split(|c: char| c == ',' || c.is_whitespace() || c == ';')
            .filter(|t| !t.is_empty())
            .map(str::parse)
            .collect();
        let coords = coords.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if let Some(first) = points.first() {
            if first.len() != coords.len() {
                return Err(format!(
                    "line {}: expected {} coordinates, found {}",
                    lineno + 1,
                    first.len(),
                    coords.len()
                ));
            }
        }
        points.push(coords);
    }
    Ok(points)
}

/// `--top 0` means "all microclusters".
fn effective_top(top: usize, available: usize) -> usize {
    if top == 0 {
        available
    } else {
        top
    }
}

/// Streams the text report to stdout. Returns `Err` on I/O failure so a
/// closed pipe (`mccatch … | head`) ends the program cleanly instead of
/// panicking (Rust ignores SIGPIPE; `println!` would abort with a
/// broken-pipe backtrace).
fn report_text(out: &McCatchOutput, labels: &[String], cli: &Cli) -> std::io::Result<()> {
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    writeln!(w, "# points: {}", out.point_scores.len())?;
    writeln!(w, "# diameter estimate: {:.6}", out.diameter)?;
    writeln!(w, "# cutoff d: {:.6}", out.cutoff.d)?;
    writeln!(w, "# outliers: {}", out.num_outliers())?;
    writeln!(w, "# microclusters: {}", out.microclusters.len())?;
    writeln!(
        w,
        "# distance evals (build + count): {}",
        out.stats.dist_build + out.stats.dist_count
    )?;
    writeln!(w)?;
    writeln!(w, "rank\tsize\tscore\tbridge\tmembers")?;
    let top = effective_top(cli.top, out.microclusters.len());
    for (rank, mc) in out.microclusters.iter().take(top).enumerate() {
        let members: Vec<&str> = mc
            .members
            .iter()
            .take(8)
            .map(|&m| labels[m as usize].as_str())
            .collect();
        let ellipsis = if mc.members.len() > 8 { ",…" } else { "" };
        writeln!(
            w,
            "{}\t{}\t{:.3}\t{:.4}\t{}{}",
            rank + 1,
            mc.cardinality(),
            mc.score,
            mc.bridge_length,
            members.join(","),
            ellipsis
        )?;
    }
    if cli.show_points {
        writeln!(w)?;
        writeln!(w, "point\tscore\toutlier")?;
        for (i, s) in out.point_scores.iter().enumerate() {
            writeln!(w, "{}\t{:.4}\t{}", labels[i], s, out.is_outlier(i as u32))?;
        }
    }
    Ok(())
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value: a number when finite, `null`
/// otherwise (JSON has no Infinity/NaN literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Streams the whole report as one JSON object. Hand-rolled on purpose:
/// the workspace is dependency-free and the schema is small and stable.
fn report_json(out: &McCatchOutput, labels: &[String], cli: &Cli) -> std::io::Result<()> {
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    writeln!(w, "{{")?;
    writeln!(w, "  \"num_points\": {},", out.point_scores.len())?;
    writeln!(w, "  \"diameter\": {},", json_f64(out.diameter))?;
    writeln!(w, "  \"cutoff\": {},", json_f64(out.cutoff.d))?;
    writeln!(w, "  \"num_outliers\": {},", out.num_outliers())?;
    // Deterministic fit cost (Step I build + counting stage), the
    // machine-independent number Lemma 1 bounds; identical across thread
    // counts, so downstream pipelines can alert on regressions.
    writeln!(
        w,
        "  \"distance_evals\": {},",
        out.stats.dist_build + out.stats.dist_count
    )?;
    let top = effective_top(cli.top, out.microclusters.len());
    write!(w, "  \"microclusters\": [")?;
    for (rank, mc) in out.microclusters.iter().take(top).enumerate() {
        if rank > 0 {
            write!(w, ",")?;
        }
        let members: Vec<String> = mc
            .members
            .iter()
            .map(|&m| format!("\"{}\"", json_escape(&labels[m as usize])))
            .collect();
        write!(
            w,
            "\n    {{\"rank\": {}, \"size\": {}, \"score\": {}, \"bridge\": {}, \"members\": [{}]}}",
            rank + 1,
            mc.cardinality(),
            json_f64(mc.score),
            json_f64(mc.bridge_length),
            members.join(", ")
        )?;
    }
    if top > 0 && !out.microclusters.is_empty() {
        writeln!(w)?;
        write!(w, "  ]")?;
    } else {
        write!(w, "]")?;
    }
    if cli.show_points {
        writeln!(w, ",")?;
        write!(w, "  \"points\": [")?;
        for (i, s) in out.point_scores.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                "\n    {{\"label\": \"{}\", \"score\": {}, \"outlier\": {}}}",
                json_escape(&labels[i]),
                json_f64(*s),
                out.is_outlier(i as u32)
            )?;
        }
        if !out.point_scores.is_empty() {
            writeln!(w)?;
            write!(w, "  ]")?;
        } else {
            write!(w, "]")?;
        }
    }
    writeln!(w)?;
    writeln!(w, "}}")?;
    Ok(())
}

/// A closed downstream pipe is a normal way for readers to stop
/// consuming; everything else is a real reporting failure.
fn print_report(out: &McCatchOutput, labels: &[String], cli: &Cli) -> Result<(), String> {
    let result = match cli.format {
        Format::Text => report_text(out, labels, cli),
        Format::Json => report_json(out, labels, cli),
    };
    match result {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("stdout: {e}")),
    }
}

fn run() -> Result<(), String> {
    let cli = parse_cli()?;
    // Validate hyperparameters before reading any data: typed errors from
    // the builder, rendered as ordinary CLI failures.
    let detector = McCatch::new(cli.params.clone()).map_err(|e| e.to_string())?;
    let text = read_input(&cli.input)?;
    // Each mode fits its own point type; both erase into `Arc<dyn Model>`
    // and feed the same format-aware report functions.
    match cli.mode.as_str() {
        "csv" => {
            let points = parse_csv(&text)?;
            if points.is_empty() {
                return Err("no data points found".to_owned());
            }
            let labels: Vec<String> = (0..points.len()).map(|i| i.to_string()).collect();
            let model: Arc<dyn Model<Vec<f64>>> = detector
                .fit(points, Euclidean, KdTreeBuilder::default())
                .map_err(|e| e.to_string())?
                .into_model();
            print_report(&model.detect_output(), &labels, &cli)
        }
        "lines" => {
            let lines: Vec<String> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_owned)
                .collect();
            if lines.is_empty() {
                return Err("no lines found".to_owned());
            }
            let labels = lines.clone();
            let model: Arc<dyn Model<String>> = detector
                .fit(lines, Levenshtein, SlimTreeBuilder::default())
                .map_err(|e| e.to_string())?
                .into_model();
            print_report(&model.detect_output(), &labels, &cli)
        }
        other => Err(format!("unknown mode: {other} (use csv|lines)")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_csv_commas_and_whitespace() {
        let pts = parse_csv("1.0, 2.0\n3.0\t4.0\n# comment\n\n5;6\n").unwrap();
        assert_eq!(pts, vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
    }

    #[test]
    fn parse_csv_rejects_ragged_rows() {
        let err = parse_csv("1,2\n3,4,5\n").unwrap_err();
        assert!(err.contains("expected 2 coordinates"), "{err}");
    }

    #[test]
    fn parse_csv_rejects_non_numeric() {
        assert!(parse_csv("1,notanumber\n").is_err());
    }

    #[test]
    fn parse_csv_empty_is_ok_but_empty() {
        assert!(parse_csv("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn top_zero_means_all() {
        assert_eq!(effective_top(0, 37), 37);
        assert_eq!(effective_top(5, 37), 5);
        assert_eq!(effective_top(50, 37), 50); // take() clamps anyway
    }

    #[test]
    fn invalid_params_become_cli_errors_not_panics() {
        let bad = Params {
            num_radii: 1,
            ..Params::default()
        };
        let err = McCatch::new(bad).unwrap_err().to_string();
        assert!(err.contains("num_radii"), "{err}");
    }

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("nl\nhere"), "nl\\nhere");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("héllo"), "héllo");
    }

    #[test]
    fn json_f64_maps_nonfinite_to_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
