//! `mccatch` — command-line microcluster detection.
//!
//! Reads a dataset from a file (or stdin) and prints the ranked
//! microclusters plus, optionally, per-point scores. Two input modes:
//!
//! * `--mode csv` (default): one point per line, comma/whitespace-
//!   separated floats; Euclidean distance.
//! * `--mode lines`: one string per line; Levenshtein distance (the
//!   paper's "L-Edit" setup for names).
//!
//! The index backend is selectable with `--index brute|kd|vp|slim`
//! (default: kd for csv — the paper's footnote-4 fast path — and slim
//! for lines; the kd-tree is Euclidean-only, so it is rejected in lines
//! mode). The chosen backend is echoed in both report formats.
//!
//! `--stream` switches both modes from one-shot batch detection to the
//! streaming subsystem (`mccatch::stream`): events are read line by
//! line, each is scored immediately against the current model and
//! emitted as one output line (`--format json` makes that one JSON
//! object per line), a sliding window of `--window` events is
//! maintained, and the model is refit in the background every
//! `--refit-every` events (0 = never) or when `--drift` is given and
//! the flagged fraction of recent events reaches it. `--warmup N` seeds
//! the initial model with the first N events (they are not scored). A
//! run summary goes to stderr, keeping stdout machine-clean.
//!
//! `--serve ADDR` starts the HTTP serving tier (`mccatch::server`)
//! instead: the events of `--input` (if given) seed the sliding window,
//! and the process answers `POST /score` (NDJSON points in, one score
//! per line out, batch-tagged with the model generation),
//! `POST /ingest` (streamed events, per-event scores, drives the same
//! `--refit-every`/`--drift` schedule), `POST /admin/refit`,
//! `GET /healthz`, and a Prometheus `GET /metrics` until killed. The
//! bound address is printed on stdout (`--serve 127.0.0.1:0` picks an
//! ephemeral port and echoes it).
//!
//! Serve mode is always multi-tenant capable (`mccatch::tenant`): every
//! endpoint is also reachable scoped to a named tenant as
//! `/t/{tenant}/…` (or via the `X-Mccatch-Tenant` header), tenants are
//! created and deleted over the wire with `PUT`/`DELETE
//! /admin/tenants/{name}`, and `--tenants N` pre-creates N empty
//! tenants (named `a`, `b`, …) at boot. `--shards K` gives every tenant
//! K hash-routed shards — independent sliding windows fitted in
//! parallel and served as a min-score ensemble — each with its own
//! bounded admission queue, so one hot tenant (or shard) cannot starve
//! the rest. The bare endpoints keep serving the default (unnamed)
//! detector exactly as before.
//!
//! ```text
//! USAGE:
//!   mccatch [--input FILE] [--mode csv|lines] [--format text|json]
//!           [--index brute|kd|vp|slim]
//!           [--radii 15] [--slope 0.1] [--max-card N] [--threads N]
//!           [--points] [--top K]
//!           [--stream] [--window N] [--refit-every N] [--warmup N]
//!           [--drift FRAC] [--drift-recent N]
//!           [--serve ADDR] [--tenants N] [--shards K]
//!           [--save-model PATH] [--load-model PATH] [--replay-log PATH]
//!           [--access-log PATH|off] [--slow-ms N]
//! ```
//!
//! Persistence (`mccatch::persist`): `--save-model PATH` writes a
//! versioned snapshot of the fitted model — after the fit in batch
//! mode, as an end-of-input checkpoint with `--stream`, and as the
//! `POST /admin/snapshot` target with `--serve`. `--load-model PATH`
//! warm-starts from a snapshot instead of fitting: batch mode reports
//! straight from it, `--stream`/`--serve` resume the saved generation
//! and stream position without an initial refit. `--replay-log PATH`
//! appends every ingested event as one NDJSON line; on a warm start the
//! log is replayed to rebuild the exact sliding window. In serve mode
//! both flags extend to named tenants: snapshots fan out as
//! `{path}.{tenant}.{shard}` (+ a `.manifest` written last), replay
//! logs as `{log}.{tenant}.{shard}`, and `--load-model` rediscovers and
//! restores every tenant found on disk before the socket binds.
//!
//! Invalid hyperparameters are reported as proper CLI errors (exit code
//! 1), never panics: parsing builds a `McCatch` via the validating
//! builder and forwards its `McCatchError` as the error message.
//!
//! Internally the CLI drives the type-erased serving handle
//! (`Arc<dyn Model<_>>`), so both input modes share one report path
//! regardless of metric and index type.

use mccatch::index::{BruteForceBuilder, KdTreeBuilder, SlimTreeBuilder, VpTreeBuilder};
use mccatch::metrics::{Euclidean, Levenshtein, Metric};
use mccatch::persist::{self, FsyncPolicy, PersistPoint, ReplayReader, ReplayWriter};
use mccatch::server::{ndjson, AccessLog, LineParser, ServerConfig};
use mccatch::stream::{RefitPolicy, ScoredEvent, StreamConfig, StreamDetector};
use mccatch::tenant::{boot_tenant_name, ReplaySpec, RouteKey, TenantMap, TenantSpec};
use mccatch::{McCatch, McCatchOutput, Model, Params};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

struct Cli {
    input: Option<String>,
    mode: String,
    format: Format,
    index: Option<IndexChoice>,
    params: Params,
    show_points: bool,
    /// Number of microclusters to print; 0 means all.
    top: usize,
    stream: bool,
    /// Address to serve HTTP on (`--serve`); port 0 picks an ephemeral
    /// port (echoed on stdout).
    serve: Option<String>,
    /// Tenants to pre-create at boot (named `a`, `b`, …); more can be
    /// created over the wire with `PUT /admin/tenants/{name}`.
    tenants: usize,
    /// Hash-routed shards per tenant (independent windows, fitted in
    /// parallel, served as a min-score ensemble).
    shards: usize,
    window: usize,
    /// Events between background refits; 0 disables scheduled refits.
    refit_every: u64,
    /// Seed the initial model with this many leading events (unscored).
    warmup: usize,
    /// Flagged fraction of recent events that triggers a drift refit.
    drift: Option<f64>,
    drift_recent: usize,
    /// Write a versioned model snapshot here (batch: after the fit;
    /// `--stream`: a checkpoint at end of input; `--serve`: the
    /// `POST /admin/snapshot` target).
    save_model: Option<String>,
    /// Warm-start from a snapshot instead of fitting from input.
    load_model: Option<String>,
    /// NDJSON ingest replay log: every accepted event is appended, and
    /// `--load-model` replays it to rebuild the exact sliding window.
    replay_log: Option<String>,
    /// Fsync the replay log every this many events (0 = every event);
    /// a hard kill loses at most this many tail events.
    replay_fsync: u64,
    /// Serve-mode access log destination: `None` keeps the default
    /// (structured NDJSON on stderr); a path appends there instead;
    /// the literal `off` disables access logging.
    access_log: Option<String>,
    /// Serve-mode slow-request threshold in milliseconds; requests at or
    /// over it enter the `GET /admin/debug/slow` ring (0 captures all).
    slow_ms: u64,
    /// Serve-mode tracing threshold in milliseconds: `Some(ms)` collects
    /// a span tree on every request and tail-samples traces at least
    /// this slow — or ending in error — into the
    /// `GET /admin/debug/trace` ring (0 keeps every trace). `None`
    /// (the default) disables tracing.
    trace_slow_ms: Option<u64>,
    /// How many sampled traces the trace ring retains.
    trace_capacity: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

/// The selectable index backends (`--index`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum IndexChoice {
    Brute,
    Kd,
    Vp,
    Slim,
}

impl IndexChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "brute" => Ok(Self::Brute),
            "kd" => Ok(Self::Kd),
            "vp" => Ok(Self::Vp),
            "slim" => Ok(Self::Slim),
            other => Err(format!("unknown index: {other} (use brute|kd|vp|slim)")),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Self::Brute => "brute",
            Self::Kd => "kd",
            Self::Vp => "vp",
            Self::Slim => "slim",
        }
    }

    /// The historical defaults: the kd fast path for vector data, the
    /// Slim-tree general path for metric data.
    fn default_for_mode(mode: &str) -> Self {
        if mode == "lines" {
            Self::Slim
        } else {
            Self::Kd
        }
    }
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        input: None,
        mode: "csv".to_owned(),
        format: Format::Text,
        index: None,
        params: Params::default(),
        show_points: false,
        top: 20,
        stream: false,
        serve: None,
        tenants: 0,
        shards: 1,
        window: 1024,
        refit_every: 256,
        warmup: 0,
        drift: None,
        drift_recent: 128,
        save_model: None,
        load_model: None,
        replay_log: None,
        replay_fsync: 64,
        access_log: None,
        slow_ms: 500,
        trace_slow_ms: None,
        trace_capacity: 64,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "--input" | "-i" => cli.input = Some(need("--input")?),
            "--mode" | "-m" => cli.mode = need("--mode")?,
            "--format" | "-f" => {
                cli.format = match need("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format: {other} (use text|json)")),
                }
            }
            "--index" | "-x" => cli.index = Some(IndexChoice::parse(&need("--index")?)?),
            "--radii" | "-a" => {
                cli.params.num_radii = need("--radii")?
                    .parse()
                    .map_err(|e| format!("--radii: {e}"))?
            }
            "--slope" | "-b" => {
                cli.params.max_plateau_slope = need("--slope")?
                    .parse()
                    .map_err(|e| format!("--slope: {e}"))?
            }
            "--max-card" | "-c" => {
                cli.params.max_mc_cardinality = Some(
                    need("--max-card")?
                        .parse()
                        .map_err(|e| format!("--max-card: {e}"))?,
                )
            }
            "--threads" | "-j" => {
                cli.params.threads = need("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--points" | "-p" => cli.show_points = true,
            "--top" | "-t" => {
                cli.top = need("--top")?.parse().map_err(|e| format!("--top: {e}"))?
            }
            "--stream" | "-s" => cli.stream = true,
            "--serve" => cli.serve = Some(need("--serve")?),
            "--tenants" => {
                cli.tenants = need("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?
            }
            "--shards" => {
                cli.shards = need("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--window" | "-w" => {
                cli.window = need("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?
            }
            "--refit-every" | "-r" => {
                cli.refit_every = need("--refit-every")?
                    .parse()
                    .map_err(|e| format!("--refit-every: {e}"))?
            }
            "--warmup" | "-u" => {
                cli.warmup = need("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?
            }
            "--drift" | "-d" => {
                cli.drift = Some(
                    need("--drift")?
                        .parse()
                        .map_err(|e| format!("--drift: {e}"))?,
                )
            }
            "--drift-recent" => {
                cli.drift_recent = need("--drift-recent")?
                    .parse()
                    .map_err(|e| format!("--drift-recent: {e}"))?
            }
            "--save-model" => cli.save_model = Some(need("--save-model")?),
            "--load-model" => cli.load_model = Some(need("--load-model")?),
            "--replay-log" => cli.replay_log = Some(need("--replay-log")?),
            "--replay-fsync" => {
                cli.replay_fsync = need("--replay-fsync")?
                    .parse()
                    .map_err(|e| format!("--replay-fsync: {e}"))?
            }
            "--access-log" => cli.access_log = Some(need("--access-log")?),
            "--slow-ms" => {
                cli.slow_ms = need("--slow-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-ms: {e}"))?
            }
            "--trace-slow-ms" => {
                cli.trace_slow_ms = Some(
                    need("--trace-slow-ms")?
                        .parse()
                        .map_err(|e| format!("--trace-slow-ms: {e}"))?,
                )
            }
            "--trace-capacity" => {
                cli.trace_capacity = need("--trace-capacity")?
                    .parse()
                    .map_err(|e| format!("--trace-capacity: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "mccatch: microcluster detection (MCCATCH, ICDE 2024)\n\n\
                     usage: mccatch [--input FILE] [--mode csv|lines] [--format text|json]\n\
                            [--index brute|kd|vp|slim]\n\
                            [--radii 15] [--slope 0.1] [--max-card N] [--threads N]\n\
                            [--points] [--top K]\n\
                            [--stream] [--window N] [--refit-every N] [--warmup N]\n\
                            [--drift FRAC] [--drift-recent N]\n\
                            [--serve ADDR] [--tenants N] [--shards K]\n\
                            [--save-model PATH] [--load-model PATH] [--replay-log PATH]\n\
                            [--access-log PATH|off] [--slow-ms N]\n\
                            [--trace-slow-ms N] [--trace-capacity N]\n\n\
                     csv mode:   one point per line, comma/whitespace separated floats\n\
                     lines mode: one string per line, Levenshtein distance\n\n\
                     --index picks the backend (default: kd for csv, slim for lines;\n\
                             kd is Euclidean-only so it requires csv mode)\n\
                     --format json emits one machine-readable JSON object\n\
                     --threads 0 (default) uses all cores; results never depend on it\n\
                     --top 0 prints all microclusters\n\n\
                     --stream scores events line by line against a sliding window of\n\
                     --window events (default 1024), refitting in the background every\n\
                     --refit-every events (default 256; 0 = never) or, with --drift F,\n\
                     when the flagged fraction of the last --drift-recent events\n\
                     reaches F. --warmup N seeds the initial model with the first N\n\
                     events (unscored). One scored line per event on stdout (text or\n\
                     NDJSON); the run summary goes to stderr.\n\n\
                     --serve ADDR starts the HTTP scoring service instead: --input\n\
                     seeds the window, then POST /score, POST /ingest,\n\
                     POST /admin/refit, GET /healthz, and GET /metrics answer until\n\
                     the process is killed. ADDR with port 0 picks an ephemeral port;\n\
                     the bound address is echoed on stdout.\n\n\
                     Serve mode is multi-tenant capable: every endpoint also answers\n\
                     scoped to a named tenant at /t/{{tenant}}/... (or with the\n\
                     X-Mccatch-Tenant header), and PUT/DELETE /admin/tenants/{{name}}\n\
                     manage tenants over the wire. --tenants N pre-creates N empty\n\
                     tenants (named a, b, ...); --shards K (default 1) gives every\n\
                     tenant K hash-routed shards fitted in parallel and served as a\n\
                     min-score ensemble, each with a bounded admission queue.\n\n\
                     --save-model PATH writes a versioned model snapshot (batch:\n\
                     after the fit; --stream: a checkpoint at end of input; --serve:\n\
                     the POST /admin/snapshot target). --load-model PATH warm-starts\n\
                     from a snapshot instead of fitting (batch: reports straight\n\
                     from it; --stream/--serve: resumes the saved generation and\n\
                     stream position). --replay-log PATH appends every ingested\n\
                     event as NDJSON; with --load-model it is replayed to rebuild\n\
                     the exact sliding window. In serve mode both extend to named\n\
                     tenants ({{path}}.{{tenant}}.{{shard}} snapshots + manifest,\n\
                     {{log}}.{{tenant}}.{{shard}} replay logs): --load-model\n\
                     rediscovers and restores every tenant on disk before binding.\n\
                     --replay-fsync N (default 64) fsyncs\n\
                     the log every N events — a hard kill loses at most N tail\n\
                     events (0 = fsync every event).\n\n\
                     Serve mode writes a structured NDJSON access log (one JSON\n\
                     object per request, with a request id echoed in\n\
                     X-Mccatch-Request-Id) to stderr; --access-log PATH appends it\n\
                     to PATH instead, and --access-log off disables it. Requests\n\
                     taking at least --slow-ms N milliseconds (default 500; 0 =\n\
                     every request) also enter a bounded in-memory ring served at\n\
                     GET /admin/debug/slow.\n\n\
                     --trace-slow-ms N turns on per-request tracing: every request\n\
                     collects a span tree (parse/route/handle, the tenant shard\n\
                     fan-out, per-event scoring, refit stages), the W3C traceparent\n\
                     header is honored and echoed, and traces at least N ms long —\n\
                     or ending in error — are tail-sampled (0 keeps every trace)\n\
                     into a ring of --trace-capacity traces (default 64) served as\n\
                     Perfetto-loadable Chrome trace JSON at GET /admin/debug/trace."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(cli)
}

fn read_input(input: &Option<String>) -> Result<String, String> {
    match input {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}")),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("stdin: {e}"))?;
            Ok(buf)
        }
    }
}

/// Opens the event source for streaming: the input file, or stdin read
/// incrementally (events are scored as they arrive, not after EOF).
fn open_events(input: &Option<String>) -> Result<Box<dyn BufRead>, String> {
    match input {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(Box::new(BufReader::new(file)))
        }
        None => Ok(Box::new(BufReader::new(std::io::stdin()))),
    }
}

/// Parses one csv-mode line into a point.
fn parse_point(line: &str) -> Result<Vec<f64>, String> {
    line.split(|c: char| c == ',' || c.is_whitespace() || c == ';')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().map_err(|e| format!("{e}")))
        .collect()
}

/// Batch csv parsing is a collect over the streaming event iterator, so
/// both paths share one set of rules and error messages by construction.
fn parse_csv(text: &str) -> Result<Vec<Vec<f64>>, String> {
    csv_events(std::io::Cursor::new(text.as_bytes())).collect()
}

/// csv-mode event iterator: skips blanks/comments, parses floats, and
/// enforces a consistent dimensionality (fixed by the first event).
fn csv_events<R: BufRead>(reader: R) -> impl Iterator<Item = Result<Vec<f64>, String>> {
    let mut dim: Option<usize> = None;
    reader
        .lines()
        .enumerate()
        .filter_map(move |(lineno, line)| {
            let line = match line {
                Err(e) => return Some(Err(format!("line {}: {e}", lineno + 1))),
                Ok(l) => l,
            };
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let coords = match parse_point(line) {
                Err(e) => return Some(Err(format!("line {}: {e}", lineno + 1))),
                Ok(c) => c,
            };
            match dim {
                None => dim = Some(coords.len()),
                Some(d) if d != coords.len() => {
                    return Some(Err(format!(
                        "line {}: expected {} coordinates, found {}",
                        lineno + 1,
                        d,
                        coords.len()
                    )))
                }
                Some(_) => {}
            }
            Some(Ok(coords))
        })
}

/// lines-mode event iterator: one trimmed, non-comment string per event.
fn line_events<R: BufRead>(reader: R) -> impl Iterator<Item = Result<String, String>> {
    reader.lines().enumerate().filter_map(|(lineno, line)| {
        let line = match line {
            Err(e) => return Some(Err(format!("line {}: {e}", lineno + 1))),
            Ok(l) => l,
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        Some(Ok(line.to_owned()))
    })
}

/// `--top 0` means "all microclusters".
fn effective_top(top: usize, available: usize) -> usize {
    if top == 0 {
        available
    } else {
        top
    }
}

/// Streams the text report to stdout. Returns `Err` on I/O failure so a
/// closed pipe (`mccatch … | head`) ends the program cleanly instead of
/// panicking (Rust ignores SIGPIPE; `println!` would abort with a
/// broken-pipe backtrace).
fn report_text(
    out: &McCatchOutput,
    labels: &[String],
    cli: &Cli,
    index: IndexChoice,
) -> std::io::Result<()> {
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    writeln!(w, "# points: {}", out.point_scores.len())?;
    writeln!(w, "# index: {}", index.name())?;
    writeln!(w, "# diameter estimate: {:.6}", out.diameter)?;
    writeln!(w, "# cutoff d: {:.6}", out.cutoff.d)?;
    writeln!(w, "# outliers: {}", out.num_outliers())?;
    writeln!(w, "# microclusters: {}", out.microclusters.len())?;
    writeln!(
        w,
        "# distance evals (build + count): {}",
        out.stats.dist_build + out.stats.dist_count
    )?;
    writeln!(
        w,
        "# stage seconds: build={:.4} count={:.4} plot={:.4} gell={:.4} score={:.4} total={:.4}",
        out.stats.t_build.as_secs_f64(),
        out.stats.t_count.as_secs_f64(),
        out.stats.t_plateaus.as_secs_f64(),
        out.stats.t_spot.as_secs_f64(),
        out.stats.t_score.as_secs_f64(),
        out.stats.t_total.as_secs_f64()
    )?;
    writeln!(w)?;
    writeln!(w, "rank\tsize\tscore\tbridge\tmembers")?;
    let top = effective_top(cli.top, out.microclusters.len());
    for (rank, mc) in out.microclusters.iter().take(top).enumerate() {
        let members: Vec<&str> = mc
            .members
            .iter()
            .take(8)
            .map(|&m| labels[m as usize].as_str())
            .collect();
        let ellipsis = if mc.members.len() > 8 { ",…" } else { "" };
        writeln!(
            w,
            "{}\t{}\t{:.3}\t{:.4}\t{}{}",
            rank + 1,
            mc.cardinality(),
            mc.score,
            mc.bridge_length,
            members.join(","),
            ellipsis
        )?;
    }
    if cli.show_points {
        writeln!(w)?;
        writeln!(w, "point\tscore\toutlier")?;
        for (i, s) in out.point_scores.iter().enumerate() {
            writeln!(w, "{}\t{:.4}\t{}", labels[i], s, out.is_outlier(i as u32))?;
        }
    }
    Ok(())
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value: a number when finite, `null`
/// otherwise (JSON has no Infinity/NaN literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Streams the whole report as one JSON object. Hand-rolled on purpose:
/// the workspace is dependency-free and the schema is small and stable.
fn report_json(
    out: &McCatchOutput,
    labels: &[String],
    cli: &Cli,
    index: IndexChoice,
) -> std::io::Result<()> {
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    writeln!(w, "{{")?;
    writeln!(w, "  \"num_points\": {},", out.point_scores.len())?;
    writeln!(w, "  \"index\": \"{}\",", index.name())?;
    writeln!(w, "  \"diameter\": {},", json_f64(out.diameter))?;
    writeln!(w, "  \"cutoff\": {},", json_f64(out.cutoff.d))?;
    writeln!(w, "  \"num_outliers\": {},", out.num_outliers())?;
    // Deterministic fit cost (Step I build + counting stage), the
    // machine-independent number Lemma 1 bounds; identical across thread
    // counts, so downstream pipelines can alert on regressions.
    writeln!(
        w,
        "  \"distance_evals\": {},",
        out.stats.dist_build + out.stats.dist_count
    )?;
    // Wall-clock per-stage fit timings in seconds, keyed by the same
    // stage names the serving tier exposes in the
    // `mccatch_stage_duration_seconds` histogram on `/metrics`.
    writeln!(
        w,
        "  \"stages\": {{\"fit_build\": {}, \"fit_counting\": {}, \"fit_plotting\": {}, \
         \"fit_gelling\": {}, \"fit_scoring\": {}, \"fit_total\": {}}},",
        json_f64(out.stats.t_build.as_secs_f64()),
        json_f64(out.stats.t_count.as_secs_f64()),
        json_f64(out.stats.t_plateaus.as_secs_f64()),
        json_f64(out.stats.t_spot.as_secs_f64()),
        json_f64(out.stats.t_score.as_secs_f64()),
        json_f64(out.stats.t_total.as_secs_f64())
    )?;
    let top = effective_top(cli.top, out.microclusters.len());
    write!(w, "  \"microclusters\": [")?;
    for (rank, mc) in out.microclusters.iter().take(top).enumerate() {
        if rank > 0 {
            write!(w, ",")?;
        }
        let members: Vec<String> = mc
            .members
            .iter()
            .map(|&m| format!("\"{}\"", json_escape(&labels[m as usize])))
            .collect();
        write!(
            w,
            "\n    {{\"rank\": {}, \"size\": {}, \"score\": {}, \"bridge\": {}, \"members\": [{}]}}",
            rank + 1,
            mc.cardinality(),
            json_f64(mc.score),
            json_f64(mc.bridge_length),
            members.join(", ")
        )?;
    }
    if top > 0 && !out.microclusters.is_empty() {
        writeln!(w)?;
        write!(w, "  ]")?;
    } else {
        write!(w, "]")?;
    }
    if cli.show_points {
        writeln!(w, ",")?;
        write!(w, "  \"points\": [")?;
        for (i, s) in out.point_scores.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                "\n    {{\"label\": \"{}\", \"score\": {}, \"outlier\": {}}}",
                json_escape(&labels[i]),
                json_f64(*s),
                out.is_outlier(i as u32)
            )?;
        }
        if !out.point_scores.is_empty() {
            writeln!(w)?;
            write!(w, "  ]")?;
        } else {
            write!(w, "]")?;
        }
    }
    writeln!(w)?;
    writeln!(w, "}}")?;
    Ok(())
}

/// A closed downstream pipe is a normal way for readers to stop
/// consuming; everything else is a real reporting failure.
fn print_report(
    out: &McCatchOutput,
    labels: &[String],
    cli: &Cli,
    index: IndexChoice,
) -> Result<(), String> {
    let result = match cli.format {
        Format::Text => report_text(out, labels, cli, index),
        Format::Json => report_json(out, labels, cli, index),
    };
    match result {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("stdout: {e}")),
    }
}

/// One emitted line per streamed event. The JSON form is the serving
/// tier's scored-event wire format (`ndjson::scored_event_json`), so
/// `--stream --format json` lines and `/ingest` responses cannot drift
/// apart.
fn format_event(e: &ScoredEvent, format: Format) -> String {
    match format {
        Format::Text => format!(
            "{}\t{}\t{:.4}\t{}\t{}",
            e.seq, e.tick, e.score, e.generation, e.flagged
        ),
        Format::Json => ndjson::scored_event_json(e),
    }
}

/// The refit schedule the `--refit-every` / `--drift*` flags describe —
/// shared by `--stream` and `--serve`.
fn stream_config(cli: &Cli) -> StreamConfig {
    let policy = match cli.drift {
        Some(threshold) => RefitPolicy::Drift {
            recent: cli.drift_recent,
            threshold,
        },
        None if cli.refit_every == 0 => RefitPolicy::Manual,
        None => RefitPolicy::EveryN(cli.refit_every),
    };
    StreamConfig {
        capacity: cli.window,
        policy,
        ..StreamConfig::default()
    }
}

/// Writes a snapshot atomically: a sibling `.tmp` file, fsynced, then
/// renamed into place — a crash mid-save never clobbers the old one.
fn save_snapshot_atomically(
    path: &str,
    write: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> Result<u64, persist::PersistError>,
) -> Result<u64, String> {
    let tmp = format!("{path}.tmp");
    let fail = |e: String| {
        let _ = std::fs::remove_file(&tmp);
        format!("{path}: {e}")
    };
    let file = std::fs::File::create(&tmp).map_err(|e| fail(e.to_string()))?;
    let mut w = std::io::BufWriter::new(file);
    let bytes = write(&mut w).map_err(|e| fail(e.to_string()))?;
    let file = w.into_inner().map_err(|e| fail(e.to_string()))?;
    file.sync_all().map_err(|e| fail(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| fail(e.to_string()))?;
    Ok(bytes)
}

/// Opens `--replay-log` for appending. A cold start (no `--load-model`)
/// refuses a log that already has entries: its tail would not agree
/// with the fresh window, so a later restore would rebuild the wrong
/// state.
fn open_replay_writer(cli: &Cli) -> Result<Option<ReplayWriter>, String> {
    let Some(path) = &cli.replay_log else {
        return Ok(None);
    };
    let has_entries = std::fs::metadata(path)
        .map(|m| m.len() > 0)
        .unwrap_or(false);
    if has_entries && cli.load_model.is_none() {
        return Err(format!(
            "replay log {path} already has entries; pass --load-model to continue it, \
             or delete it to start fresh"
        ));
    }
    ReplayWriter::open(path, FsyncPolicy::EveryN(cli.replay_fsync))
        .map(Some)
        .map_err(|e| format!("{path}: {e}"))
}

/// Appends the detector's current window (typically the just-seeded
/// events) to the replay log, so a log started mid-stream is
/// self-contained: replaying it alone rebuilds the full window.
fn log_window<P, M, B>(
    writer: &mut ReplayWriter,
    stream: &StreamDetector<P, M, B>,
) -> Result<(), String>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: mccatch::index::IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let cp = stream.checkpoint();
    let base = cp.seq - cp.entries.len() as u64;
    for (i, (tick, point)) in cp.entries.iter().enumerate() {
        writer
            .append(base + i as u64, *tick, point)
            .map_err(|e| format!("replay log: {e}"))?;
    }
    writer.sync().map_err(|e| format!("replay log: {e}"))
}

/// Warm-boots a detector from `--load-model`, replaying the
/// `--replay-log` file (when it exists) to rebuild the exact sliding
/// window.
fn restore_detector<P, M, B>(
    cli: &Cli,
    config: StreamConfig,
    metric: M,
    builder: B,
    snap: &str,
) -> Result<StreamDetector<P, M, B>, String>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: mccatch::index::IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let replayed = match &cli.replay_log {
        Some(lp) if std::path::Path::new(lp).exists() => {
            let entries = ReplayReader::open(lp)
                .and_then(|r| r.read_all::<P>())
                .map_err(|e| format!("{lp}: {e}"))?;
            eprintln!("# replay log: {} events from {lp}", entries.len());
            Some(entries)
        }
        _ => None,
    };
    let file = std::fs::File::open(snap).map_err(|e| format!("{snap}: {e}"))?;
    let (detector, info) = persist::restore_stream(
        config,
        metric,
        builder,
        std::io::BufReader::new(file),
        replayed,
    )
    .map_err(|e| format!("{snap}: {e}"))?;
    eprintln!(
        "# warm start: {snap} generation={} seq={} backend={} points={}",
        info.generation, info.seq, info.backend, info.num_points
    );
    Ok(detector)
}

/// Drives the streaming subsystem over an event iterator: seed the
/// first `--warmup` events (or warm-start from `--load-model`), then
/// score-and-emit each remaining event, appending accepted events to
/// the `--replay-log` and checkpointing to `--save-model` at end of
/// input. Generic over the point type and backend, so csv and lines
/// mode share one implementation across all four `--index` choices.
fn run_stream<P, M, B>(
    cli: &Cli,
    detector: McCatch,
    metric: M,
    builder: B,
    index: IndexChoice,
    mut events: impl Iterator<Item = Result<P, String>>,
) -> Result<(), String>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: mccatch::index::IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let config = stream_config(cli);
    let mut replay = open_replay_writer(cli)?;
    let stream = if let Some(snap) = &cli.load_model {
        // A warm start brings its own window: `--warmup` is moot, every
        // input event is scored.
        restore_detector(cli, config, metric, builder, snap)?
    } else {
        let mut seed = Vec::with_capacity(cli.warmup);
        for ev in events.by_ref().take(cli.warmup) {
            seed.push(ev?);
        }
        let stream = StreamDetector::new(config, detector, metric, builder, seed)
            .map_err(|e| e.to_string())?;
        if let Some(w) = replay.as_mut() {
            log_window(w, &stream)?;
        }
        stream
    };

    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    let mut emit = |line: String| -> Result<bool, String> {
        match writeln!(w, "{line}") {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(false),
            Err(e) => Err(format!("stdout: {e}")),
        }
    };
    // A closed pipe anywhere (header included) stops emitting but still
    // falls through to the stderr run summary below.
    let mut open = true;
    if cli.format == Format::Text {
        open = emit("seq\ttick\tscore\tgeneration\tflagged".to_owned())?;
    }
    if open {
        for ev in events {
            let event = if let Some(w) = replay.as_mut() {
                let point = ev?;
                let event = stream.ingest(point.clone());
                // Best-effort: a full disk must not stop live scoring.
                let _ = w.append(event.seq, event.tick, &point);
                event
            } else {
                stream.ingest(ev?)
            };
            if !emit(format_event(&event, cli.format))? {
                break;
            }
        }
    }
    if let Some(w) = replay.as_mut() {
        w.sync().map_err(|e| format!("replay log: {e}"))?;
    }
    let stats = stream.stats();
    eprintln!(
        "# stream summary: index={} events={} scored={} evicted={} window={}/{} \
         generation={} refits(completed/requested/coalesced/skipped/failed)={}/{}/{}/{}/{} \
         fit_distance_evals={}",
        index.name(),
        stats.events_ingested,
        stats.events_scored,
        stats.events_evicted,
        stats.window_len,
        stats.window_capacity,
        stats.generation,
        stats.refits_completed,
        stats.refits_requested,
        stats.refits_coalesced,
        stats.refits_skipped,
        stats.refits_failed,
        stats.fit_distance_evals,
    );
    if let Some(path) = &cli.save_model {
        let bytes = save_snapshot_atomically(path, |w| persist::checkpoint_stream(&stream, w))?;
        eprintln!("# saved checkpoint: {path} ({bytes} bytes)");
    }
    Ok(())
}

/// Drives the HTTP serving tier (`--serve ADDR`): seeds a sliding
/// window with the events of `--input` (when given), starts
/// `mccatch::server` over the chosen metric/index backend with the
/// `--window`/`--refit-every`/`--drift*` schedule, prints the bound
/// address on stdout (machine-readable — ask for port 0 and read it
/// back), and blocks until the process is stopped.
///
/// `parser_for` builds the NDJSON line parser once the seed is known,
/// so csv mode can pin the expected dimensionality to the seeded data.
///
/// The server always mounts a tenant registry (`mccatch::tenant`), so
/// `PUT /admin/tenants/{name}` works without any flag; `--tenants N`
/// pre-creates `a`, `b`, … and `--shards K` sets the per-tenant shard
/// count. Every tenant is stamped from the same `--window`/refit
/// schedule as the default detector.
fn run_serve<P, M, B>(
    cli: &Cli,
    detector: McCatch,
    metric: M,
    builder: B,
    index: IndexChoice,
    parser_for: impl FnOnce(&[P]) -> LineParser<P>,
    events: impl Iterator<Item = Result<P, String>>,
) -> Result<(), String>
where
    P: PersistPoint + RouteKey + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: mccatch::index::IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let addr = cli.serve.as_deref().expect("run_serve requires --serve");
    let server_config = ServerConfig {
        snapshot_path: cli.save_model.clone().map(std::path::PathBuf::from),
        replay_log: cli.replay_log.clone().map(std::path::PathBuf::from),
        replay_fsync_every: cli.replay_fsync,
        // The CLI serves humans, so the access log defaults on (stderr,
        // where all run commentary already goes); embedded servers
        // default quiet.
        access_log: match cli.access_log.as_deref() {
            None => AccessLog::Stderr,
            Some("off") => AccessLog::Off,
            Some(path) => AccessLog::File(std::path::PathBuf::from(path)),
        },
        slow_request_ms: cli.slow_ms,
        trace_slow_ms: cli.trace_slow_ms,
        trace_capacity: cli.trace_capacity,
        ..ServerConfig::default()
    };
    let tenants = TenantMap::new(
        detector.clone(),
        metric.clone(),
        builder.clone(),
        TenantSpec {
            shards: cli.shards,
            stream: stream_config(cli),
            // Named tenants keep their own `{log}.{tenant}.{shard}`
            // replay logs next to the default-tenant log.
            replay: cli.replay_log.as_ref().map(|p| ReplaySpec {
                base: std::path::PathBuf::from(p),
                fsync: FsyncPolicy::EveryN(cli.replay_fsync),
            }),
            ..TenantSpec::default()
        },
    )
    .map_err(|e| e.to_string())?;
    // Warm restart first: rediscover every `{snap}.{tenant}.{shard}` set
    // on disk and re-register it (generation, seq, and window resumed),
    // then pre-create only the boot tenants that were not restored.
    if let Some(snap) = &cli.load_model {
        for t in tenants
            .restore_tenants(std::path::Path::new(snap))
            .map_err(|e| e.to_string())?
        {
            eprintln!(
                "# restored tenant {}: {} shards, {} replayed events, generation {}, seq {}",
                t.name, t.stats.shards, t.stats.replayed_events, t.stats.generation, t.stats.seq
            );
        }
    }
    for i in 0..cli.tenants {
        let name = boot_tenant_name(i);
        if tenants.get(&name).is_none() {
            tenants.create(&name).map_err(|e| e.to_string())?;
        }
    }
    let stream = if let Some(snap) = &cli.load_model {
        restore_detector(cli, stream_config(cli), metric, builder, snap)?
    } else {
        let seed: Vec<P> = events.collect::<Result<_, _>>()?;
        let stream = StreamDetector::new(stream_config(cli), detector, metric, builder, seed)
            .map_err(|e| e.to_string())?;
        // Seed the log before the server takes over appending, so the
        // log alone can rebuild the window (the CLI writer is dropped
        // — flushed — before the server opens its own).
        if let Some(mut w) = open_replay_writer(cli)? {
            log_window(&mut w, &stream)?;
        }
        stream
    };
    // The parser pins to the live window (seeded or restored), so
    // wrong-arity lines degrade to per-line errors; an empty window
    // pins to the first accepted event instead.
    let parser = parser_for(&stream.window_points());
    let server = mccatch::server::serve_tenants(
        addr,
        server_config,
        Arc::new(stream),
        parser,
        index.name(),
        Arc::new(tenants),
    )
    .map_err(|e| e.to_string())?;
    // The stdout line is the contract smoke gates and scripts parse;
    // human-facing detail goes to stderr.
    println!("listening on http://{}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    eprintln!(
        "# serving index={} window={} tenants={} shards={} \
         endpoints=/score,/ingest,/admin/refit,/admin/snapshot,\
         /admin/snapshot/info,/healthz,/metrics,/admin/tenants,/t/{{tenant}}/*",
        index.name(),
        cli.window,
        cli.tenants,
        cli.shards
    );
    server.wait();
    Ok(())
}

/// Fits a batch model over vector points with the chosen backend.
fn fit_csv_model(
    detector: &McCatch,
    points: Vec<Vec<f64>>,
    index: IndexChoice,
) -> Result<Arc<dyn Model<Vec<f64>>>, String> {
    let fitted = match index {
        IndexChoice::Brute => detector
            .fit(points, Euclidean, BruteForceBuilder)
            .map(|f| f.into_model()),
        IndexChoice::Kd => detector
            .fit(points, Euclidean, KdTreeBuilder::default())
            .map(|f| f.into_model()),
        IndexChoice::Vp => detector
            .fit(points, Euclidean, VpTreeBuilder::default())
            .map(|f| f.into_model()),
        IndexChoice::Slim => detector
            .fit(points, Euclidean, SlimTreeBuilder::default())
            .map(|f| f.into_model()),
    };
    fitted.map_err(|e| e.to_string())
}

/// Fits a batch model over string points with the chosen backend.
fn fit_lines_model(
    detector: &McCatch,
    lines: Vec<String>,
    index: IndexChoice,
) -> Result<Arc<dyn Model<String>>, String> {
    let fitted = match index {
        IndexChoice::Kd => return Err(kd_needs_csv()),
        IndexChoice::Brute => detector
            .fit(lines, Levenshtein, BruteForceBuilder)
            .map(|f| f.into_model()),
        IndexChoice::Vp => detector
            .fit(lines, Levenshtein, VpTreeBuilder::default())
            .map(|f| f.into_model()),
        IndexChoice::Slim => detector
            .fit(lines, Levenshtein, SlimTreeBuilder::default())
            .map(|f| f.into_model()),
    };
    fitted.map_err(|e| e.to_string())
}

fn kd_needs_csv() -> String {
    "--index kd is Euclidean-only and requires --mode csv (use brute|vp|slim for lines)".to_owned()
}

/// Batch-mode `--load-model`: rebuilds the fitted model from a snapshot
/// (verified bit-identical by `mccatch::persist`) and prints the usual
/// report — no input data needed.
fn report_snapshot<P, M, B>(
    cli: &Cli,
    path: &str,
    metric: M,
    builder: B,
    index: IndexChoice,
    labels_of: impl FnOnce(&[P]) -> Vec<String>,
) -> Result<(), String>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: mccatch::index::IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let loaded = persist::load_model(std::io::BufReader::new(file), metric, builder)
        .map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "# loaded snapshot: {path} generation={} seq={}",
        loaded.generation, loaded.seq
    );
    let labels = labels_of(&loaded.fitted.export().points);
    print_report(&loaded.fitted.detect(), &labels, cli, index)
}

/// Dispatches batch-mode `--load-model` on the snapshot's own header:
/// the point kind picks the metric, the recorded backend picks the
/// index — a `--mode`/`--index` flag is only consulted to catch a
/// contradiction.
fn run_batch_load(cli: &Cli, path: &str) -> Result<(), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let info =
        persist::read_info(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    let index =
        IndexChoice::parse(&info.backend).map_err(|e| format!("{path}: snapshot backend: {e}"))?;
    if let Some(flag) = cli.index {
        if flag != index {
            return Err(format!(
                "--index {} contradicts the snapshot, which was fitted with {}",
                flag.name(),
                index.name()
            ));
        }
    }
    match info.point_kind {
        1 => {
            let labels_of =
                |pts: &[Vec<f64>]| (0..pts.len()).map(|i| i.to_string()).collect::<Vec<_>>();
            match index {
                IndexChoice::Brute => {
                    report_snapshot(cli, path, Euclidean, BruteForceBuilder, index, labels_of)
                }
                IndexChoice::Kd => report_snapshot(
                    cli,
                    path,
                    Euclidean,
                    KdTreeBuilder::default(),
                    index,
                    labels_of,
                ),
                IndexChoice::Vp => report_snapshot(
                    cli,
                    path,
                    Euclidean,
                    VpTreeBuilder::default(),
                    index,
                    labels_of,
                ),
                IndexChoice::Slim => report_snapshot(
                    cli,
                    path,
                    Euclidean,
                    SlimTreeBuilder::default(),
                    index,
                    labels_of,
                ),
            }
        }
        2 => {
            let labels_of = |pts: &[String]| pts.to_vec();
            match index {
                IndexChoice::Kd => Err(kd_needs_csv()),
                IndexChoice::Brute => {
                    report_snapshot(cli, path, Levenshtein, BruteForceBuilder, index, labels_of)
                }
                IndexChoice::Vp => report_snapshot(
                    cli,
                    path,
                    Levenshtein,
                    VpTreeBuilder::default(),
                    index,
                    labels_of,
                ),
                IndexChoice::Slim => report_snapshot(
                    cli,
                    path,
                    Levenshtein,
                    SlimTreeBuilder::default(),
                    index,
                    labels_of,
                ),
            }
        }
        other => Err(format!("{path}: unsupported point kind {other}")),
    }
}

/// Batch-mode `--save-model`: persists a freshly fitted model at
/// generation 0, with the stream position set to the fit size.
fn save_batch_model<P: PersistPoint>(cli: &Cli, model: &dyn Model<P>) -> Result<(), String> {
    if let Some(path) = &cli.save_model {
        let seq = model.stats().num_points as u64;
        let bytes = save_snapshot_atomically(path, |w| persist::save_model(model, 0, seq, w))?;
        eprintln!("# saved model: {path} ({bytes} bytes)");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let cli = parse_cli()?;
    // Validate hyperparameters before reading any data: typed errors from
    // the builder, rendered as ordinary CLI failures.
    let detector = McCatch::new(cli.params.clone()).map_err(|e| e.to_string())?;
    let index = cli
        .index
        .unwrap_or(IndexChoice::default_for_mode(&cli.mode));

    if cli.serve.is_none() && (cli.tenants > 0 || cli.shards != 1) {
        return Err("--tenants/--shards only apply to serve mode; add --serve ADDR".to_owned());
    }

    if cli.serve.is_some() && cli.load_model.is_some() && cli.input.is_some() {
        return Err(
            "--serve with --load-model takes its window from the snapshot and replay log; \
             drop --input"
                .to_owned(),
        );
    }

    if cli.serve.is_some() {
        // Seed events come from --input only: a server must not sit
        // reading stdin (there is no terminal in its lifecycle).
        return match cli.mode.as_str() {
            "csv" => {
                let events: Box<dyn Iterator<Item = Result<Vec<f64>, String>>> = match &cli.input {
                    Some(_) => Box::new(csv_events(open_events(&cli.input)?)),
                    None => Box::new(std::iter::empty()),
                };
                // Pin the wire protocol to the seeded dimensionality so
                // wrong-arity lines degrade to per-line errors; an
                // unseeded server pins to the first accepted event
                // instead, so mixed-arity traffic can never reach a
                // refit.
                let parser_for = |seed: &[Vec<f64>]| match seed.first() {
                    Some(p) => ndjson::vector_parser(Some(p.len())),
                    None => ndjson::vector_parser_auto(),
                };
                match index {
                    IndexChoice::Brute => run_serve(
                        &cli,
                        detector,
                        Euclidean,
                        BruteForceBuilder,
                        index,
                        parser_for,
                        events,
                    ),
                    IndexChoice::Kd => run_serve(
                        &cli,
                        detector,
                        Euclidean,
                        KdTreeBuilder::default(),
                        index,
                        parser_for,
                        events,
                    ),
                    IndexChoice::Vp => run_serve(
                        &cli,
                        detector,
                        Euclidean,
                        VpTreeBuilder::default(),
                        index,
                        parser_for,
                        events,
                    ),
                    IndexChoice::Slim => run_serve(
                        &cli,
                        detector,
                        Euclidean,
                        SlimTreeBuilder::default(),
                        index,
                        parser_for,
                        events,
                    ),
                }
            }
            "lines" => {
                let events: Box<dyn Iterator<Item = Result<String, String>>> = match &cli.input {
                    Some(_) => Box::new(line_events(open_events(&cli.input)?)),
                    None => Box::new(std::iter::empty()),
                };
                let parser_for =
                    |_: &[String]| -> LineParser<String> { Arc::new(ndjson::parse_string_line) };
                match index {
                    IndexChoice::Kd => Err(kd_needs_csv()),
                    IndexChoice::Brute => run_serve(
                        &cli,
                        detector,
                        Levenshtein,
                        BruteForceBuilder,
                        index,
                        parser_for,
                        events,
                    ),
                    IndexChoice::Vp => run_serve(
                        &cli,
                        detector,
                        Levenshtein,
                        VpTreeBuilder::default(),
                        index,
                        parser_for,
                        events,
                    ),
                    IndexChoice::Slim => run_serve(
                        &cli,
                        detector,
                        Levenshtein,
                        SlimTreeBuilder::default(),
                        index,
                        parser_for,
                        events,
                    ),
                }
            }
            other => Err(format!("unknown mode: {other} (use csv|lines)")),
        };
    }

    if cli.stream {
        let reader = open_events(&cli.input)?;
        return match cli.mode.as_str() {
            "csv" => {
                let events = csv_events(reader);
                match index {
                    IndexChoice::Brute => {
                        run_stream(&cli, detector, Euclidean, BruteForceBuilder, index, events)
                    }
                    IndexChoice::Kd => run_stream(
                        &cli,
                        detector,
                        Euclidean,
                        KdTreeBuilder::default(),
                        index,
                        events,
                    ),
                    IndexChoice::Vp => run_stream(
                        &cli,
                        detector,
                        Euclidean,
                        VpTreeBuilder::default(),
                        index,
                        events,
                    ),
                    IndexChoice::Slim => run_stream(
                        &cli,
                        detector,
                        Euclidean,
                        SlimTreeBuilder::default(),
                        index,
                        events,
                    ),
                }
            }
            "lines" => {
                let events = line_events(reader);
                match index {
                    IndexChoice::Kd => Err(kd_needs_csv()),
                    IndexChoice::Brute => run_stream(
                        &cli,
                        detector,
                        Levenshtein,
                        BruteForceBuilder,
                        index,
                        events,
                    ),
                    IndexChoice::Vp => run_stream(
                        &cli,
                        detector,
                        Levenshtein,
                        VpTreeBuilder::default(),
                        index,
                        events,
                    ),
                    IndexChoice::Slim => run_stream(
                        &cli,
                        detector,
                        Levenshtein,
                        SlimTreeBuilder::default(),
                        index,
                        events,
                    ),
                }
            }
            other => Err(format!("unknown mode: {other} (use csv|lines)")),
        };
    }

    // Batch-mode `--load-model` needs no input at all: the snapshot is
    // the dataset, the fit, and the backend choice in one file.
    if let Some(path) = &cli.load_model {
        return run_batch_load(&cli, path);
    }

    let text = read_input(&cli.input)?;
    // Each mode fits its own point type; both erase into `Arc<dyn Model>`
    // and feed the same format-aware report functions.
    match cli.mode.as_str() {
        "csv" => {
            let points = parse_csv(&text)?;
            if points.is_empty() {
                return Err("no data points found".to_owned());
            }
            let labels: Vec<String> = (0..points.len()).map(|i| i.to_string()).collect();
            let model = fit_csv_model(&detector, points, index)?;
            save_batch_model(&cli, model.as_ref())?;
            print_report(&model.detect_output(), &labels, &cli, index)
        }
        "lines" => {
            // Same iterator as `--stream` lines mode: one set of skip
            // rules for both paths, by construction.
            let lines: Vec<String> =
                line_events(std::io::Cursor::new(text.as_bytes())).collect::<Result<_, _>>()?;
            if lines.is_empty() {
                return Err("no lines found".to_owned());
            }
            let labels = lines.clone();
            let model = fit_lines_model(&detector, lines, index)?;
            save_batch_model(&cli, model.as_ref())?;
            print_report(&model.detect_output(), &labels, &cli, index)
        }
        other => Err(format!("unknown mode: {other} (use csv|lines)")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_csv_commas_and_whitespace() {
        let pts = parse_csv("1.0, 2.0\n3.0\t4.0\n# comment\n\n5;6\n").unwrap();
        assert_eq!(pts, vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
    }

    #[test]
    fn parse_csv_rejects_ragged_rows() {
        let err = parse_csv("1,2\n3,4,5\n").unwrap_err();
        assert!(err.contains("expected 2 coordinates"), "{err}");
    }

    #[test]
    fn parse_csv_rejects_non_numeric() {
        assert!(parse_csv("1,notanumber\n").is_err());
    }

    #[test]
    fn parse_csv_empty_is_ok_but_empty() {
        assert!(parse_csv("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn csv_events_match_batch_parsing_and_check_dims() {
        let reader: Box<dyn BufRead> =
            Box::new(std::io::Cursor::new("1.0, 2.0\n# c\n\n3 4\n5;6;7\n"));
        let events: Vec<_> = csv_events(reader).collect();
        assert_eq!(events[0], Ok(vec![1.0, 2.0]));
        assert_eq!(events[1], Ok(vec![3.0, 4.0]));
        let err = events[2].as_ref().unwrap_err();
        assert!(err.contains("expected 2 coordinates"), "{err}");
    }

    #[test]
    fn line_events_skip_blanks_and_comments() {
        let reader: Box<dyn BufRead> = Box::new(std::io::Cursor::new("alice\n# nope\n\n bob \n"));
        let events: Vec<_> = line_events(reader).collect();
        assert_eq!(events, vec![Ok("alice".to_owned()), Ok("bob".to_owned())]);
    }

    #[test]
    fn top_zero_means_all() {
        assert_eq!(effective_top(0, 37), 37);
        assert_eq!(effective_top(5, 37), 5);
        assert_eq!(effective_top(50, 37), 50); // take() clamps anyway
    }

    #[test]
    fn invalid_params_become_cli_errors_not_panics() {
        let bad = Params {
            num_radii: 1,
            ..Params::default()
        };
        let err = McCatch::new(bad).unwrap_err().to_string();
        assert!(err.contains("num_radii"), "{err}");
    }

    #[test]
    fn index_choice_parses_and_defaults() {
        assert_eq!(IndexChoice::parse("kd"), Ok(IndexChoice::Kd));
        assert_eq!(IndexChoice::parse("brute"), Ok(IndexChoice::Brute));
        assert_eq!(IndexChoice::parse("vp"), Ok(IndexChoice::Vp));
        assert_eq!(IndexChoice::parse("slim"), Ok(IndexChoice::Slim));
        assert!(IndexChoice::parse("rtree").is_err());
        assert_eq!(IndexChoice::default_for_mode("csv"), IndexChoice::Kd);
        assert_eq!(IndexChoice::default_for_mode("lines"), IndexChoice::Slim);
    }

    #[test]
    fn kd_index_is_rejected_for_lines_mode() {
        let detector = McCatch::builder().build().unwrap();
        let err = fit_lines_model(&detector, vec!["a".into(), "b".into()], IndexChoice::Kd)
            .err()
            .expect("kd must be rejected in lines mode");
        assert!(err.contains("csv"), "{err}");
    }

    #[test]
    fn every_index_choice_fits_vector_data() {
        let detector = McCatch::builder().build().unwrap();
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        for index in [
            IndexChoice::Brute,
            IndexChoice::Kd,
            IndexChoice::Vp,
            IndexChoice::Slim,
        ] {
            let model = fit_csv_model(&detector, pts.clone(), index).unwrap();
            assert_eq!(model.stats().num_points, 50, "{index:?}");
        }
    }

    #[test]
    fn format_event_text_and_ndjson() {
        let e = ScoredEvent {
            seq: 7,
            tick: 9,
            score: 1.25,
            generation: 2,
            flagged: true,
        };
        assert_eq!(format_event(&e, Format::Text), "7\t9\t1.2500\t2\ttrue");
        assert_eq!(
            format_event(&e, Format::Json),
            "{\"seq\": 7, \"tick\": 9, \"score\": 1.25, \"generation\": 2, \"flagged\": true}"
        );
    }

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("nl\nhere"), "nl\\nhere");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("héllo"), "héllo");
    }

    #[test]
    fn json_f64_maps_nonfinite_to_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
