//! Statistical machinery for the axiom experiments (Tab. V) and the
//! scalability fits (Fig. 7): Welch's two-sample t-test with exact
//! t-distribution p-values (via the regularized incomplete beta function)
//! and ordinary least-squares regression.

/// Natural log of the gamma function (Lanczos approximation, |err| < 2e-10).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0);
    const COEF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularized incomplete beta function `I_x(a, b)` by the continued
/// fraction of Numerical Recipes (`betacf`).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation for fast convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// `P(T ≤ t)` for Student's t with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic (positive when `mean(a) > mean(b)`).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// One-sided p-value for H1: `mean(a) > mean(b)`.
    pub p_greater: f64,
}

/// Welch's t-test (unequal variances). The paper's Tab. V tests, per axiom
/// scenario, whether the green microcluster's scores exceed the red one's.
///
/// Requires at least two samples per side. Zero-variance sides are handled
/// by an epsilon floor so identical-sample corner cases stay finite.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TTest {
    assert!(a.len() >= 2 && b.len() >= 2, "need >= 2 samples per side");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let var =
        |v: &[f64], m: f64| v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64;
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (var(a, ma).max(1e-300), var(b, mb).max(1e-300));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let p_greater = 1.0 - student_t_cdf(t, df);
    TTest { t, df, p_greater }
}

/// Ordinary least squares `y = slope · x + intercept` with `R²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fits a least-squares line; used to measure log-log runtime slopes in
/// Fig. 7 and the correlation fractal dimension.
pub fn linear_regression(x: &[f64], y: &[f64]) -> Regression {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2, "need at least two points to fit a line");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let syy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Regression {
        slope,
        intercept,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        // Γ(0.5) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        let (a, b, x) = (2.5, 1.5, 0.3);
        let lhs = incomplete_beta(a, b, x);
        let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn student_t_cdf_symmetry_and_known_values() {
        assert!((student_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
        // CDF(-t) = 1 - CDF(t).
        let (t, df) = (1.7, 9.0);
        assert!((student_t_cdf(-t, df) - (1.0 - student_t_cdf(t, df))).abs() < 1e-12);
        // t_{0.975, 10} ≈ 2.228: CDF(2.228, 10) ≈ 0.975.
        assert!((student_t_cdf(2.228, 10.0) - 0.975).abs() < 1e-3);
        // Large df converges to the normal: CDF(1.96, 1e6) ≈ 0.975.
        assert!((student_t_cdf(1.96, 1e6) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn welch_detects_clear_separation() {
        let a = [10.0, 10.1, 9.9, 10.2, 9.8];
        let b = [5.0, 5.2, 4.9, 5.1, 4.8];
        let r = welch_t_test(&a, &b);
        assert!(r.t > 10.0);
        assert!(r.p_greater < 1e-6, "p = {}", r.p_greater);
    }

    #[test]
    fn welch_no_difference_gives_large_p() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.1, 1.9, 3.1, 3.9, 5.05];
        let r = welch_t_test(&a, &b);
        assert!(r.p_greater > 0.3);
    }

    #[test]
    fn welch_direction_matters() {
        let lo = [1.0, 1.1, 0.9];
        let hi = [2.0, 2.1, 1.9];
        assert!(welch_t_test(&hi, &lo).p_greater < 0.01);
        assert!(welch_t_test(&lo, &hi).p_greater > 0.99);
    }

    #[test]
    fn welch_scipy_reference() {
        // scipy.stats.ttest_ind([1,2,3,4,5],[2,3,4,5,6], equal_var=False)
        // => t = -1.0, df = 8, two-sided p = 0.3466.
        let r = welch_t_test(&[1.0, 2.0, 3.0, 4.0, 5.0], &[2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!((r.t + 1.0).abs() < 1e-9, "t = {}", r.t);
        assert!((r.df - 8.0).abs() < 1e-9);
        let two_sided = 2.0 * r.p_greater.min(1.0 - r.p_greater);
        assert!((two_sided - 0.3466).abs() < 5e-3, "p = {two_sided}");
    }

    #[test]
    fn regression_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let r = linear_regression(&x, &y);
        assert!((r.slope - 2.0).abs() < 1e-12);
        assert!((r.intercept - 1.0).abs() < 1e-12);
        assert!((r.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_noisy_line_r2_below_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.1, 3.9, 6.2, 7.8, 10.1];
        let r = linear_regression(&x, &y);
        assert!((r.slope - 2.0).abs() < 0.1);
        assert!(r.r2 > 0.99 && r.r2 <= 1.0);
    }
}
