//! Detection-quality metrics used in the paper's evaluation: AUROC
//! (Fig. 6), Average Precision and Max-F1 (Tab. IV), plus the
//! harmonic-mean-rank aggregation of Tab. IV.

/// Area under the ROC curve for anomaly `scores` against boolean `labels`
/// (`true` = outlier). Computed by the Mann–Whitney rank statistic with
/// midranks for ties, so tied scores contribute 0.5 — the standard
/// convention.
///
/// Returns 0.5 when either class is empty (no ranking information).
pub fn auroc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort indices ascending by score; assign midranks to ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Ranks i+1..=j+1 (1-based) share the midrank.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Average Precision: mean of precision@k over the ranks k of true
/// outliers, scanning by descending score. Ties are handled by averaging
/// over the tie group (each tied positive sees the group's expected
/// precision), making the result order-independent.
pub fn average_precision(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    if n_pos == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut sum = 0.0;
    let mut tp_before = 0usize; // true positives strictly above this tie group
    let mut seen_before = 0usize;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let group = j - i + 1;
        let tp_group = idx[i..=j].iter().filter(|&&k| labels[k]).count();
        if tp_group > 0 {
            // Expected precision for a positive inside the shuffled group:
            // positives are spread evenly; use the continuous approximation
            // sum_{t=1..tp} (tp_before + t) / (seen_before + t*group/tp).
            for t in 1..=tp_group {
                let rank = seen_before as f64 + t as f64 * group as f64 / tp_group as f64;
                let tp = tp_before as f64 + t as f64;
                sum += tp / rank;
            }
        }
        tp_before += tp_group;
        seen_before += group;
        i = j + 1;
    }
    sum / n_pos as f64
}

/// Maximum F1 score over all score thresholds.
pub fn max_f1(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    if n_pos == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut best = 0.0f64;
    let mut tp = 0usize;
    let mut i = 0;
    while i < idx.len() {
        // Advance through a whole tie group before evaluating: thresholds
        // cannot separate equal scores.
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        tp += idx[i..=j].iter().filter(|&&k| labels[k]).count();
        let predicted = j + 1;
        let precision = tp as f64 / predicted as f64;
        let recall = tp as f64 / n_pos as f64;
        if precision + recall > 0.0 {
            best = best.max(2.0 * precision * recall / (precision + recall));
        }
        i = j + 1;
    }
    best
}

/// Harmonic mean of strictly positive values (Tab. IV aggregates per-method
/// ranking positions this way).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    assert!(values.iter().all(|&v| v > 0.0), "harmonic mean needs v > 0");
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// Competition ranks (1 = best = largest value) with midranks for ties:
/// used to build Tab. IV's "ranking position of each method per dataset".
pub fn rank_descending(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auroc_perfect_ranking() {
        let scores = [0.1, 0.2, 0.9, 1.0];
        let labels = [false, false, true, true];
        assert_eq!(auroc(&scores, &labels), 1.0);
    }

    #[test]
    fn auroc_inverted_ranking() {
        let scores = [0.9, 1.0, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert_eq!(auroc(&scores, &labels), 0.0);
    }

    #[test]
    fn auroc_random_is_half() {
        // All scores identical: midranks give exactly 0.5.
        let scores = [0.5; 10];
        let labels = [
            true, false, true, false, true, false, true, false, true, false,
        ];
        assert_eq!(auroc(&scores, &labels), 0.5);
    }

    #[test]
    fn auroc_known_value() {
        // scores: pos {3, 1}, neg {2, 0}. Pairs: (3>2),(3>0),(1<2),(1>0)
        // => 3/4 wins.
        let scores = [3.0, 1.0, 2.0, 0.0];
        let labels = [true, true, false, false];
        assert_eq!(auroc(&scores, &labels), 0.75);
    }

    #[test]
    fn auroc_degenerate_classes() {
        assert_eq!(auroc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(auroc(&[1.0, 2.0], &[false, false]), 0.5);
    }

    #[test]
    fn ap_perfect_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_known_value() {
        // Ranking: pos, neg, pos, neg => (1/1 + 2/3)/2 = 5/6.
        let scores = [4.0, 3.0, 2.0, 1.0];
        let labels = [true, false, true, false];
        assert!((average_precision(&scores, &labels) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ap_no_positives_is_zero() {
        assert_eq!(average_precision(&[1.0, 2.0], &[false, false]), 0.0);
    }

    #[test]
    fn max_f1_perfect() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(max_f1(&scores, &labels), 1.0);
    }

    #[test]
    fn max_f1_known_value() {
        // Ranking: pos, neg, neg, pos. Thresholds: k=1: F1=2*(1*0.5)/1.5=2/3;
        // k=4: P=0.5, R=1 => 2/3. Max = 2/3.
        let scores = [4.0, 3.0, 2.0, 1.0];
        let labels = [true, false, false, true];
        assert!((max_f1(&scores, &labels) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_known() {
        assert!((harmonic_mean(&[1.0, 4.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[3.0]), 3.0);
    }

    #[test]
    fn rank_descending_with_ties() {
        let r = rank_descending(&[10.0, 30.0, 20.0, 30.0]);
        assert_eq!(r, vec![4.0, 1.5, 3.0, 1.5]);
    }

    #[test]
    fn auroc_invariant_to_monotone_transform() {
        let scores = [0.1, 0.7, 0.3, 0.9, 0.5];
        let labels = [false, true, false, true, false];
        let transformed: Vec<f64> = scores.iter().map(|s: &f64| s.exp() * 100.0).collect();
        assert_eq!(auroc(&scores, &labels), auroc(&transformed, &labels));
    }
}
