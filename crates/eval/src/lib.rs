//! Evaluation metrics and statistics for the MCCATCH reproduction.
//!
//! * [`metrics`] — AUROC / Average Precision / Max-F1 and harmonic-mean
//!   ranks, the measures of Fig. 6 and Tab. IV.
//! * [`stats`] — Welch's two-sample t-test with exact t-distribution
//!   p-values (Tab. V), plus least-squares regression (Fig. 7 slopes).
//! * [`fractal`] — correlation fractal dimension `u` (Tab. III; expected
//!   runtime slopes `2 − 1/u` of Lemma 1 / Fig. 7).

pub mod fractal;
pub mod metrics;
pub mod stats;

pub use fractal::{correlation_dimension, FractalDim};
pub use metrics::{auroc, average_precision, harmonic_mean, max_f1, rank_descending};
pub use stats::{
    incomplete_beta, linear_regression, ln_gamma, student_t_cdf, welch_t_test, Regression, TTest,
};
