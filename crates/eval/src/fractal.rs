//! Correlation (fractal) dimension estimation.
//!
//! Lemma 1 bounds MCCATCH's cost by `O(n · n^(1-1/u))` where `u` is the
//! *correlation fractal dimension* — "how quickly the number of neighbors
//! grows with the distance" (footnote 7). Tab. III reports `u` for every
//! dataset and Fig. 7 derives the expected runtime slopes `2 - 1/u` from
//! it. We estimate `u` the standard way: the slope of
//! `log2(avg pair count within r)` versus `log2(r)` over the scaling range.
//!
//! Only distances are needed, so this works for nondimensional data too —
//! exactly as the paper requires.

use crate::stats::linear_regression;
use mccatch_index::{IndexBuilder, RangeIndex};
use mccatch_metric::Metric;

/// Correlation-dimension estimate with its diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct FractalDim {
    /// Estimated correlation fractal dimension `u`.
    pub dimension: f64,
    /// `R²` of the log-log fit (low values mean no clear scaling range).
    pub r2: f64,
    /// The `(log2 r, log2 avg-count)` points used in the fit.
    pub fit_points: Vec<(f64, f64)>,
}

/// Estimates the correlation fractal dimension of `points` under `metric`.
///
/// `num_radii` controls the grid resolution (the paper's own radius count,
/// 15, is a good default); `max_queries` caps the number of correlation-
/// integral query points for large datasets (deterministic striding, no
/// sampling randomness).
pub fn correlation_dimension<P, M, B>(
    points: &[P],
    metric: &M,
    builder: &B,
    num_radii: usize,
    max_queries: usize,
) -> FractalDim
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    let n = points.len();
    assert!(num_radii >= 3);
    if n < 3 {
        return FractalDim {
            dimension: 0.0,
            r2: 1.0,
            fit_points: Vec::new(),
        };
    }
    let index = builder.build_all_ref(points, metric);
    let diameter = index.diameter_estimate();
    if diameter <= 0.0 {
        return FractalDim {
            dimension: 0.0,
            r2: 1.0,
            fit_points: Vec::new(),
        };
    }
    // Deterministic query subset: every ceil(n / max_queries)-th point.
    let stride = n.div_ceil(max_queries.max(1)).max(1);
    let queries: Vec<u32> = (0..n as u32).step_by(stride).collect();
    let radii: Vec<f64> = (0..num_radii)
        .map(|k| diameter / (1u64 << (num_radii - 1 - k)) as f64)
        .collect();
    // Correlation integral: average neighbor count (excluding self) per r.
    let mut fit_points = Vec::new();
    for &r in &radii {
        let counts = mccatch_index::batch_range_count(&index, points, &queries, r, 1);
        let avg = counts
            .iter()
            .map(|&c| (c.saturating_sub(1)) as f64)
            .sum::<f64>()
            / queries.len() as f64;
        // Keep only the scaling range: neither empty nor saturated.
        if avg >= 0.5 && avg <= 0.4 * n as f64 {
            fit_points.push((r.log2(), avg.log2()));
        }
    }
    if fit_points.len() < 2 {
        // No scaling range: distances concentrate (high embedding
        // dimension at this sample size) and the correlation dimension is
        // not measurable — report NaN rather than a misleading number.
        return FractalDim {
            dimension: f64::NAN,
            r2: 0.0,
            fit_points,
        };
    }
    let xs: Vec<f64> = fit_points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = fit_points.iter().map(|p| p.1).collect();
    let reg = linear_regression(&xs, &ys);
    FractalDim {
        dimension: reg.slope,
        r2: reg.r2,
        fit_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::KdTreeBuilder;
    use mccatch_metric::Euclidean;

    /// Deterministic low-discrepancy sequence filling [0,1]^d.
    fn halton(n: usize, dim: usize) -> Vec<Vec<f64>> {
        const PRIMES: [u64; 4] = [2, 3, 5, 7];
        (1..=n)
            .map(|i| {
                (0..dim)
                    .map(|d| {
                        let base = PRIMES[d % PRIMES.len()];
                        let mut f = 1.0;
                        let mut r = 0.0;
                        let mut k = i as u64 + (d / PRIMES.len()) as u64 * 7919;
                        while k > 0 {
                            f /= base as f64;
                            r += f * (k % base) as f64;
                            k /= base;
                        }
                        r
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn line_has_dimension_one() {
        let pts: Vec<Vec<f64>> = (0..2000).map(|i| vec![i as f64, 0.0]).collect();
        let fd = correlation_dimension(&pts, &Euclidean, &KdTreeBuilder::default(), 15, 500);
        assert!(
            (fd.dimension - 1.0).abs() < 0.15,
            "line dim {} r2 {}",
            fd.dimension,
            fd.r2
        );
    }

    #[test]
    fn plane_has_dimension_two() {
        let pts = halton(4000, 2);
        let fd = correlation_dimension(&pts, &Euclidean, &KdTreeBuilder::default(), 15, 500);
        assert!(
            (fd.dimension - 2.0).abs() < 0.3,
            "plane dim {} r2 {}",
            fd.dimension,
            fd.r2
        );
    }

    #[test]
    fn diagonal_in_high_dim_still_dimension_one() {
        // 10-dim diagonal line: embedding dim 10, intrinsic dim 1 — the
        // Diagonal dataset of Fig. 7.
        let pts: Vec<Vec<f64>> = (0..2000).map(|i| vec![i as f64 * 0.01; 10]).collect();
        let fd = correlation_dimension(&pts, &Euclidean, &KdTreeBuilder::default(), 15, 400);
        assert!(
            (fd.dimension - 1.0).abs() < 0.15,
            "diagonal dim {}",
            fd.dimension
        );
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<Vec<f64>> = vec![];
        let fd = correlation_dimension(&empty, &Euclidean, &KdTreeBuilder::default(), 15, 100);
        assert_eq!(fd.dimension, 0.0);
        let same = vec![vec![1.0, 1.0]; 10];
        let fd = correlation_dimension(&same, &Euclidean, &KdTreeBuilder::default(), 15, 100);
        assert_eq!(fd.dimension, 0.0);
    }
}
