//! The tenant persistence gate: snapshot → restore of a K-shard tenant
//! is **bit-identical** to the live tenant.
//!
//! For random seeds and ingest streams, `Tenant::save_snapshot` →
//! `TenantMap::restore_tenants` must reproduce the exact serving state:
//! same ensemble score bits on fresh queries, same per-shard
//! generations, same per-shard window contents — including events that
//! landed *after* the snapshot and therefore only survive through the
//! per-shard replay logs. Checked for K ∈ {1, 2, 4} on every index
//! backend, for both `Vec<f64>` and `String` points.

use mccatch_core::McCatch;
use mccatch_index::{
    BruteForceBuilder, IndexBuilder, KdTreeBuilder, SlimTreeBuilder, VpTreeBuilder,
};
use mccatch_metric::{Euclidean, Levenshtein, Metric};
use mccatch_persist::{FsyncPolicy, PersistPoint};
use mccatch_stream::{RefitPolicy, StreamConfig};
use mccatch_tenant::{ReplaySpec, RouteKey, TenantMap, TenantSpec};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh scratch directory per round trip, so concurrent proptest
/// cases never collide on snapshot or log files.
fn scratch_dir() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mccatch-tenant-roundtrip-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn spec(shards: usize, log: PathBuf) -> TenantSpec {
    TenantSpec {
        shards,
        stream: StreamConfig {
            capacity: 32,
            policy: RefitPolicy::Manual,
            ..StreamConfig::default()
        },
        replay: Some(ReplaySpec {
            base: log,
            fsync: FsyncPolicy::Never,
        }),
        ..TenantSpec::default()
    }
}

/// Live tenant vs. its restored twin: seed → ingest → refit → snapshot
/// → ingest more (replay-log only) → restore into a fresh map, then
/// demand bit-identical scores and identical per-shard state.
fn assert_tenant_round_trip<P, M, B>(
    metric: M,
    builder: B,
    shards: usize,
    seed: &[P],
    mid: &[P],
    post: &[P],
    queries: &[P],
) -> Result<(), TestCaseError>
where
    P: RouteKey + PersistPoint + Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let dir = scratch_dir();
    let snap = dir.join("model.snap");
    let log = dir.join("ingest.ndjson");

    let detector = McCatch::builder().build().expect("defaults are valid");
    let live_map = TenantMap::new(
        detector.clone(),
        metric.clone(),
        builder.clone(),
        spec(shards, log.clone()),
    )
    .expect("spec is valid");
    let live = live_map
        .create_seeded("t", seed.to_vec())
        .expect("create_seeded");
    for p in mid {
        live.ingest(p.clone()).expect("ingest");
    }
    live.refit_now().expect("refit");
    live.save_snapshot(&snap).expect("save_snapshot");
    // These events exist only in the rotated replay logs — restoring
    // them proves the log path, not just the snapshot path.
    for p in post {
        live.ingest(p.clone()).expect("ingest after snapshot");
    }

    let expected_scores: Vec<u64> = queries.iter().map(|q| live.score(q).to_bits()).collect();
    let expected_shards: Vec<(u64, Vec<P>)> = (0..shards)
        .map(|s| {
            let d = live.shard_detector(s).expect("shard");
            (d.generation(), d.window_points())
        })
        .collect();
    drop(live);
    drop(live_map);

    let restored_map =
        TenantMap::new(detector, metric, builder, spec(shards, log)).expect("spec is valid");
    let restored = restored_map
        .restore_tenants(&snap)
        .expect("restore_tenants");
    prop_assert_eq!(restored.len(), 1);
    prop_assert_eq!(restored[0].name.as_str(), "t");
    prop_assert_eq!(restored[0].stats.shards, shards);

    let twin = restored_map.get("t").expect("restored tenant registered");
    prop_assert_eq!(twin.restore_stats(), Some(restored[0].stats));
    let got_scores: Vec<u64> = queries.iter().map(|q| twin.score(q).to_bits()).collect();
    prop_assert_eq!(got_scores, expected_scores);
    for (s, (generation, window)) in expected_shards.iter().enumerate() {
        let d = twin.shard_detector(s).expect("shard");
        prop_assert_eq!(d.generation(), *generation);
        prop_assert_eq!(&d.window_points(), window);
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

/// `(seed, mid-stream ingest, post-snapshot ingest, queries)`.
type Streams<P> = (Vec<P>, Vec<P>, Vec<P>, Vec<P>);

fn vector_streams() -> impl Strategy<Value = Streams<Vec<f64>>> {
    let point = prop::collection::vec(-100.0..100.0f64, 3);
    (
        prop::collection::vec(point.clone(), 24..48),
        prop::collection::vec(point.clone(), 4..12),
        prop::collection::vec(point.clone(), 1..8),
        prop::collection::vec(point, 1..6),
    )
}

fn string_streams() -> impl Strategy<Value = Streams<String>> {
    let word = "[a-d]{2,8}";
    (
        prop::collection::vec(word, 24..48),
        prop::collection::vec(word, 4..12),
        prop::collection::vec(word, 1..8),
        prop::collection::vec(word, 1..6),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn vector_tenants_restore_bit_identically_on_all_backends(
        (seed, mid, post, queries) in vector_streams(),
        shards in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
    ) {
        assert_tenant_round_trip(
            Euclidean, BruteForceBuilder, shards, &seed, &mid, &post, &queries,
        )?;
        assert_tenant_round_trip(
            Euclidean, KdTreeBuilder::default(), shards, &seed, &mid, &post, &queries,
        )?;
        assert_tenant_round_trip(
            Euclidean, VpTreeBuilder::default(), shards, &seed, &mid, &post, &queries,
        )?;
        assert_tenant_round_trip(
            Euclidean, SlimTreeBuilder::default(), shards, &seed, &mid, &post, &queries,
        )?;
    }

    #[test]
    fn string_tenants_restore_bit_identically(
        (seed, mid, post, queries) in string_streams(),
        shards in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
    ) {
        // Every metric-only backend; the kd-tree is Euclidean-only and
        // cannot index string points.
        assert_tenant_round_trip(
            Levenshtein, BruteForceBuilder, shards, &seed, &mid, &post, &queries,
        )?;
        assert_tenant_round_trip(
            Levenshtein, VpTreeBuilder::default(), shards, &seed, &mid, &post, &queries,
        )?;
        assert_tenant_round_trip(
            Levenshtein, SlimTreeBuilder::default(), shards, &seed, &mid, &post, &queries,
        )?;
    }
}
