//! Typed errors of the multi-tenant layer.

use mccatch_stream::StreamError;

/// Everything that can go wrong creating, routing to, or driving a
/// tenant. Lifecycle violations (`AlreadyExists`, `NotFound`) and
/// admission control (`ShardSaturated`) are ordinary, recoverable
/// outcomes a serving layer maps to HTTP statuses; `Stream` wraps a
/// shard's underlying [`StreamError`].
#[derive(Debug, Clone, PartialEq)]
pub enum TenantError {
    /// The tenant name is not `[a-zA-Z0-9_-]{1,64}` (see
    /// [`valid_tenant_name`](crate::valid_tenant_name)).
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// A tenant with this name already exists in the map.
    AlreadyExists {
        /// The contested name.
        name: String,
    },
    /// No tenant with this name exists in the map.
    NotFound {
        /// The name that was looked up.
        name: String,
    },
    /// A tenant must own at least one shard.
    InvalidShards {
        /// The rejected shard count.
        got: usize,
    },
    /// The per-shard ingest queue bound must be at least one.
    InvalidQueue {
        /// The rejected queue bound.
        got: usize,
    },
    /// An explicit shard index was outside the tenant's shard set.
    NoSuchShard {
        /// The requested shard.
        shard: usize,
        /// How many shards the tenant owns.
        shards: usize,
    },
    /// The routed shard's bounded ingest queue is full — backpressure,
    /// scoped to one tenant's shard so a hot tenant cannot starve the
    /// rest. Retry after in-flight ingests drain.
    ShardSaturated {
        /// The saturated tenant.
        tenant: String,
        /// The saturated shard.
        shard: usize,
        /// The configured in-flight bound that was hit.
        capacity: usize,
    },
    /// A shard's stream detector failed (initial fit or refit).
    Stream(StreamError),
    /// Opening or seeding a shard's replay log failed at tenant
    /// creation/restore (the message is the rendered persist-layer
    /// error; this enum stays `Clone + PartialEq`, which the underlying
    /// `PersistError` is not).
    Replay {
        /// The tenant whose log failed.
        tenant: String,
        /// The shard whose log failed.
        shard: usize,
        /// The rendered underlying error.
        message: String,
    },
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidName { name } => write!(
                f,
                "invalid tenant name {name:?}: must match [a-zA-Z0-9_-]{{1,64}}"
            ),
            Self::AlreadyExists { name } => write!(f, "tenant {name:?} already exists"),
            Self::NotFound { name } => write!(f, "no such tenant: {name:?}"),
            Self::InvalidShards { got } => {
                write!(f, "a tenant needs at least 1 shard, got {got}")
            }
            Self::InvalidQueue { got } => {
                write!(f, "per-shard ingest queue must be >= 1, got {got}")
            }
            Self::NoSuchShard { shard, shards } => {
                write!(f, "no such shard: {shard} (tenant has {shards})")
            }
            Self::ShardSaturated {
                tenant,
                shard,
                capacity,
            } => write!(
                f,
                "tenant {tenant:?} shard {shard} is saturated ({capacity} ingests in flight)"
            ),
            Self::Stream(e) => write!(f, "shard stream error: {e}"),
            Self::Replay {
                tenant,
                shard,
                message,
            } => write!(f, "tenant {tenant:?} shard {shard} replay log: {message}"),
        }
    }
}

impl std::error::Error for TenantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for TenantError {
    fn from(e: StreamError) -> Self {
        Self::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = TenantError::ShardSaturated {
            tenant: "acme".to_owned(),
            shard: 3,
            capacity: 16,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("acme") && msg.contains('3') && msg.contains("16"),
            "{msg}"
        );
        assert!(TenantError::NotFound {
            name: "ghost".to_owned()
        }
        .to_string()
        .contains("ghost"));
    }
}
