//! Deterministic point-to-shard routing.
//!
//! A tenant's shards partition its traffic: every ingested point lands
//! on exactly one shard, chosen by a stable hash of the point itself
//! (so replays and restarts route identically, with no coordination
//! state to persist) — or by an explicit shard index when the caller
//! already partitions upstream.

use crate::error::TenantError;

/// A point that can be hashed to a stable 64-bit routing key.
///
/// The key must be a pure function of the point's value: the same point
/// routes to the same shard on every process, every restart, and every
/// replay. `f64` coordinates hash by their IEEE-754 bit patterns, so
/// `0.0` and `-0.0` are distinct keys — routing only needs determinism,
/// not numeric equivalence classes.
pub trait RouteKey {
    /// The stable routing key of this point.
    fn route_key(&self) -> u64;
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte stream — tiny, dependency-free, and stable.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl RouteKey for Vec<f64> {
    fn route_key(&self) -> u64 {
        fnv1a(self.iter().flat_map(|c| c.to_bits().to_le_bytes()))
    }
}

impl RouteKey for String {
    fn route_key(&self) -> u64 {
        fnv1a(self.bytes())
    }
}

/// Maps routing keys onto a fixed shard set.
///
/// The mapping first mixes the key with a 64-bit finalizer (FNV's low
/// bits alone are weak for small alphabets) and then reduces modulo the
/// shard count. It is a pure function: the same key always lands on
/// the same shard.
///
/// ```
/// use mccatch_tenant::{RouteKey, ShardRouter};
///
/// let router = ShardRouter::new(4)?;
/// let p = vec![1.0, 2.0];
/// assert_eq!(router.route(&p), router.route(&p.clone()));
/// assert!(router.route(&p) < 4);
/// # Ok::<(), mccatch_tenant::TenantError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (`>= 1`).
    pub fn new(shards: usize) -> Result<Self, TenantError> {
        if shards == 0 {
            return Err(TenantError::InvalidShards { got: 0 });
        }
        Ok(Self { shards })
    }

    /// How many shards this router spreads over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard of a raw routing key.
    pub fn route_raw(&self, key: u64) -> usize {
        // SplitMix64 finalizer: spreads FNV's structure across all 64
        // bits before the modulo, so nearby keys don't stripe.
        let mut k = key;
        k ^= k >> 30;
        k = k.wrapping_mul(0xbf58476d1ce4e5b9);
        k ^= k >> 27;
        k = k.wrapping_mul(0x94d049bb133111eb);
        k ^= k >> 31;
        (k % self.shards as u64) as usize
    }

    /// The shard of a point, via its [`RouteKey`].
    pub fn route<P: RouteKey>(&self, point: &P) -> usize {
        self.route_raw(point.route_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1).unwrap();
        for i in 0..100 {
            assert_eq!(r.route(&vec![i as f64, -i as f64]), 0);
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert_eq!(
            ShardRouter::new(0),
            Err(TenantError::InvalidShards { got: 0 })
        );
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = ShardRouter::new(7).unwrap();
        for i in 0..500 {
            let p = vec![i as f64 * 0.25, (i % 13) as f64];
            let shard = r.route(&p);
            assert!(shard < 7);
            assert_eq!(shard, r.route(&p.clone()));
        }
        let s = "some tenant key".to_owned();
        assert_eq!(r.route(&s), r.route(&s.clone()));
    }

    #[test]
    fn routing_spreads_a_grid_across_shards() {
        // Not a statistical test — just: a structured input must not
        // all collapse onto one shard.
        let r = ShardRouter::new(4).unwrap();
        let mut hist = [0usize; 4];
        for i in 0..400 {
            hist[r.route(&vec![(i % 20) as f64, (i / 20) as f64])] += 1;
        }
        assert!(
            hist.iter().all(|&c| c > 0),
            "grid routing collapsed: {hist:?}"
        );
    }

    #[test]
    fn string_and_vector_keys_are_value_functions() {
        assert_eq!("abc".to_owned().route_key(), "abc".to_owned().route_key());
        assert_ne!("abc".to_owned().route_key(), "abd".to_owned().route_key());
        assert_ne!(vec![1.0].route_key(), vec![1.0, 0.0].route_key());
        // -0.0 and 0.0 have distinct bit patterns, hence distinct keys.
        assert_ne!(vec![0.0f64].route_key(), vec![-0.0f64].route_key());
    }
}
