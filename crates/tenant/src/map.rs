//! The concurrent tenant registry.

use crate::error::TenantError;
use crate::name::valid_tenant_name;
use crate::persistence::{
    discover_tenants, read_manifest, shard_file_path, tenant_manifest_path, DiscoveredTenant,
    RestoredTenant, TenantPersistError, TenantRestoreStats,
};
use crate::router::RouteKey;
use crate::tenant::{Tenant, TenantSpec};
use mccatch_core::McCatch;
use mccatch_index::IndexBuilder;
use mccatch_metric::Metric;
use mccatch_persist::{crc32, restore_stream, PersistPoint, ReplayReader};
use mccatch_stream::StreamDetector;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// The registry's inner storage: name → shared tenant handle.
type Registry<P, M, B> = BTreeMap<String, Arc<Tenant<P, M, B>>>;

/// A concurrent registry of named [`Tenant`]s, all stamped from one
/// [`TenantSpec`] (same shard count, stream schedule, and admission
/// bound) over one detector/metric/index configuration.
///
/// Lookups take a read lock for the map access only — scoring and
/// ingest run entirely outside it on the returned `Arc<Tenant>`, so a
/// create or delete never stalls another tenant's traffic. Fitting a
/// new tenant (the expensive part of `create`) also runs outside the
/// lock; two racing creates of the same name resolve to one winner and
/// one [`AlreadyExists`](TenantError::AlreadyExists).
///
/// Deleting a tenant only unlinks it: in-flight requests holding the
/// `Arc` finish against the detached shard set, which shuts down when
/// the last clone drops.
pub struct TenantMap<P, M, B> {
    detector: McCatch,
    metric: M,
    builder: B,
    spec: TenantSpec,
    tenants: RwLock<Registry<P, M, B>>,
}

impl<P, M, B> TenantMap<P, M, B>
where
    P: RouteKey + PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    /// An empty map that will stamp every tenant from `spec` (validated
    /// here) with refits driven by `detector` over `metric`/`builder`.
    pub fn new(
        detector: McCatch,
        metric: M,
        builder: B,
        spec: TenantSpec,
    ) -> Result<Self, TenantError> {
        spec.validate()?;
        Ok(Self {
            detector,
            metric,
            builder,
            spec,
            tenants: RwLock::new(BTreeMap::new()),
        })
    }

    /// The spec every tenant is stamped from.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// Creates an empty tenant (degenerate shard models until its first
    /// ingest + refit). See [`create_seeded`](Self::create_seeded).
    pub fn create(&self, name: &str) -> Result<Arc<Tenant<P, M, B>>, TenantError> {
        self.create_seeded(name, Vec::new())
    }

    /// Creates a tenant seeded with `seed`: the seed is partitioned
    /// across the shards by routing key and every shard fits in
    /// parallel, all **outside** the registry lock. Fails with
    /// [`InvalidName`](TenantError::InvalidName) or
    /// [`AlreadyExists`](TenantError::AlreadyExists).
    pub fn create_seeded(
        &self,
        name: &str,
        seed: Vec<P>,
    ) -> Result<Arc<Tenant<P, M, B>>, TenantError> {
        if !valid_tenant_name(name) {
            return Err(TenantError::InvalidName {
                name: name.to_owned(),
            });
        }
        let exists = |map: &Registry<P, M, B>| -> Result<(), TenantError> {
            if map.contains_key(name) {
                return Err(TenantError::AlreadyExists {
                    name: name.to_owned(),
                });
            }
            Ok(())
        };
        // Cheap early check so a racing duplicate usually skips the fit
        // entirely; the write-locked insert below is the real arbiter.
        exists(&self.tenants.read().unwrap_or_else(|e| e.into_inner()))?;
        let tenant = Arc::new(Tenant::new(
            name,
            &self.detector,
            &self.metric,
            &self.builder,
            &self.spec,
            seed,
        )?);
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        exists(&map)?;
        map.insert(name.to_owned(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// The tenant named `name`, if it exists.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant<P, M, B>>> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Unlinks and returns the tenant named `name`. In-flight requests
    /// holding its `Arc` complete normally; the shard workers shut down
    /// when the last clone drops.
    pub fn remove(&self, name: &str) -> Result<Arc<Tenant<P, M, B>>, TenantError> {
        self.tenants
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .ok_or_else(|| TenantError::NotFound {
                name: name.to_owned(),
            })
    }

    /// The live tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// How many tenants are live.
    pub fn len(&self) -> usize {
        self.tenants.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the map holds no tenants.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rediscovers every tenant persisted under the snapshot prefix
    /// `base` and re-registers each in this map with its generation,
    /// stream position, and (when replay logs are configured on the
    /// spec) sliding-window contents resumed. Returns what was
    /// restored, in name order.
    ///
    /// Discovery scans `base`'s directory for `{base}.{tenant}.{shard}`
    /// files. Each discovered tenant is validated against its
    /// `{base}.{tenant}.manifest` — present
    /// ([`MissingManifest`](TenantPersistError::MissingManifest)
    /// otherwise: a manifest is written last, so its absence means a
    /// partial snapshot), certifying the spec's shard count, with a
    /// contiguous `0..shards` file set
    /// ([`MissingShard`](TenantPersistError::MissingShard) /
    /// [`ExtraShard`](TenantPersistError::ExtraShard)) whose CRC-32s
    /// match ([`CrcMismatch`](TenantPersistError::CrcMismatch)). Every
    /// shard then rebuilds through the persist layer's verified
    /// bit-compare load — all shards of a tenant in parallel on a
    /// `thread::scope` fan-out, the same shape as the fan-out fit — and
    /// replays the newest `capacity` events of its `{log}.{tenant}.{shard}`
    /// replay log into the window.
    ///
    /// Corrupt or partial snapshot sets are **typed errors, never
    /// panics**; the first failing tenant aborts the restore (tenants
    /// already re-registered stay registered). An empty directory — or
    /// one with no tenant-suffixed files — restores nothing and returns
    /// an empty list.
    pub fn restore_tenants(&self, base: &Path) -> Result<Vec<RestoredTenant>, TenantPersistError> {
        let mut out = Vec::new();
        for (name, files) in discover_tenants(base)? {
            let _span = mccatch_obs::Span::enter("tenant_restore");
            out.push(self.restore_one(base, &name, files)?);
        }
        Ok(out)
    }

    /// Validates one discovered tenant's snapshot set and rebuilds it.
    fn restore_one(
        &self,
        base: &Path,
        name: &str,
        files: DiscoveredTenant,
    ) -> Result<RestoredTenant, TenantPersistError> {
        let manifest_path = files
            .manifest
            .ok_or_else(|| TenantPersistError::MissingManifest {
                tenant: name.to_owned(),
                path: tenant_manifest_path(base, name),
            })?;
        let manifest = read_manifest(&manifest_path, name)?;
        if manifest.shards != self.spec.shards {
            return Err(TenantPersistError::ShardCountMismatch {
                tenant: name.to_owned(),
                manifest: manifest.shards,
                spec: self.spec.shards,
            });
        }
        if let Some((&shard, path)) = files.shards.range(manifest.shards..).next() {
            return Err(TenantPersistError::ExtraShard {
                tenant: name.to_owned(),
                shard,
                path: path.clone(),
            });
        }
        // Read + fingerprint every shard file before loading anything:
        // a torn set is rejected as a whole, not after a partial load.
        let mut blobs = Vec::with_capacity(manifest.shards);
        for shard in 0..manifest.shards {
            let path =
                files
                    .shards
                    .get(&shard)
                    .ok_or_else(|| TenantPersistError::MissingShard {
                        tenant: name.to_owned(),
                        shard,
                        path: shard_file_path(base, name, shard),
                    })?;
            let bytes = std::fs::read(path).map_err(|source| TenantPersistError::Io {
                path: path.clone(),
                source,
            })?;
            let got = crc32(&bytes);
            if got != manifest.crc32[shard] {
                return Err(TenantPersistError::CrcMismatch {
                    tenant: name.to_owned(),
                    shard,
                    expected: manifest.crc32[shard],
                    got,
                });
            }
            blobs.push(bytes);
        }
        // Verified bit-compare load of every shard in parallel — the
        // same thread::scope fan-out shape as the fit path: wall-clock
        // is the slowest shard, not the sum.
        type ShardResult<P, M, B> = Result<(StreamDetector<P, M, B>, u64), TenantPersistError>;
        let results: Vec<ShardResult<P, M, B>> = std::thread::scope(|scope| {
            let handles: Vec<_> = blobs
                .iter()
                .enumerate()
                .map(|(shard, bytes)| {
                    let (metric, builder) = (self.metric.clone(), self.builder.clone());
                    let config = self.spec.stream.clone();
                    let replay_path = self
                        .spec
                        .replay
                        .as_ref()
                        .map(|rs| shard_file_path(&rs.base, name, shard));
                    scope.spawn(move || {
                        let shard_err = |source| TenantPersistError::Shard {
                            tenant: name.to_owned(),
                            shard,
                            source,
                        };
                        let entries = match replay_path {
                            Some(p) if p.exists() => Some(
                                ReplayReader::open(&p)
                                    .and_then(|r| r.read_all::<P>())
                                    .map_err(shard_err)?,
                            ),
                            _ => None,
                        };
                        let replayed = entries.as_ref().map_or(0, |e| e.len() as u64);
                        let (detector, _info) =
                            restore_stream(config, metric, builder, &bytes[..], entries)
                                .map_err(shard_err)?;
                        Ok((detector, replayed))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard restore thread panicked"))
                .collect()
        });
        let mut detectors = Vec::with_capacity(results.len());
        let mut replayed_events = 0;
        for r in results {
            let (d, replayed) = r?;
            replayed_events += replayed;
            detectors.push(d);
        }
        let stats = TenantRestoreStats {
            shards: detectors.len(),
            replayed_events,
            generation: detectors.iter().map(|d| d.generation()).sum(),
            seq: detectors.iter().map(|d| d.checkpoint().seq).sum(),
        };
        let tenant = Arc::new(Tenant::from_restored(name, &self.spec, detectors, stats)?);
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(name) {
            return Err(TenantPersistError::Tenant(TenantError::AlreadyExists {
                name: name.to_owned(),
            }));
        }
        map.insert(name.to_owned(), tenant);
        Ok(RestoredTenant {
            name: name.to_owned(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::KdTreeBuilder;
    use mccatch_metric::Euclidean;
    use mccatch_stream::{RefitPolicy, StreamConfig};

    fn map(shards: usize) -> TenantMap<Vec<f64>, Euclidean, KdTreeBuilder> {
        TenantMap::new(
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            TenantSpec {
                shards,
                stream: StreamConfig {
                    capacity: 256,
                    policy: RefitPolicy::Manual,
                    ..StreamConfig::default()
                },
                ingest_queue: 16,
                replay: None,
            },
        )
        .unwrap()
    }

    fn grid(n: usize, shift: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i % 10) as f64 + shift, (i / 10) as f64 + shift])
            .collect()
    }

    #[test]
    fn lifecycle_create_get_remove() {
        let m = map(1);
        assert!(m.is_empty());
        m.create("a").unwrap();
        m.create_seeded("b", grid(50, 0.0)).unwrap();
        assert_eq!(m.names(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(m.len(), 2);
        assert!(m.get("a").is_some() && m.get("ghost").is_none());
        assert_eq!(
            m.create("a").err(),
            Some(TenantError::AlreadyExists { name: "a".into() })
        );
        assert_eq!(m.remove("a").unwrap().name(), "a");
        assert_eq!(
            m.remove("a").err(),
            Some(TenantError::NotFound { name: "a".into() })
        );
        assert_eq!(m.names(), vec!["b".to_owned()]);
    }

    #[test]
    fn invalid_names_never_enter_the_map() {
        let m = map(1);
        for bad in ["", "a b", "a/b", "né", &"x".repeat(65)] {
            assert_eq!(
                m.create(bad).err(),
                Some(TenantError::InvalidName {
                    name: bad.to_owned()
                }),
                "{bad:?}"
            );
        }
        assert!(m.is_empty());
    }

    #[test]
    fn invalid_spec_is_rejected_at_map_construction() {
        let err = TenantMap::<Vec<f64>, _, _>::new(
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            TenantSpec {
                shards: 0,
                ..TenantSpec::default()
            },
        )
        .err();
        assert_eq!(err, Some(TenantError::InvalidShards { got: 0 }));
    }

    #[test]
    fn tenants_are_isolated_ingest_to_one_never_moves_another() {
        let m = map(2);
        let mut seed = grid(100, 0.0);
        seed.push(vec![500.0, 500.0]);
        for name in ["a", "b", "c", "d"] {
            m.create_seeded(name, seed.clone()).unwrap();
        }
        let queries: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64 * 0.7, 3.3]).collect();
        let b = m.get("b").unwrap();
        let (b_scores_before, b_gen_before) = b.score_batch(&queries);
        let b_stats_before = b.shard_stats();

        // Hammer tenant a: ingest plus explicit refits.
        let a = m.get("a").unwrap();
        for i in 0..300 {
            a.ingest(vec![i as f64 * 0.01, 1.0]).unwrap();
        }
        a.refit_now().unwrap();
        assert!(a.generation() > 0);

        // Tenant b is untouched: same scores (bitwise), same
        // generation, same stream counters.
        let (b_scores_after, b_gen_after) = b.score_batch(&queries);
        assert_eq!(b_scores_before, b_scores_after);
        assert_eq!(b_gen_before, b_gen_after);
        assert_eq!(b_stats_before, b.shard_stats());
        for name in ["c", "d"] {
            assert_eq!(m.get(name).unwrap().generation(), 0, "{name}");
        }
    }

    #[test]
    fn racing_creates_resolve_to_one_winner() {
        let m = std::sync::Arc::new(map(1));
        let winners: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let m = std::sync::Arc::clone(&m);
                    scope.spawn(move || m.create("contested").is_ok())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(winners.iter().filter(|w| **w).count(), 1, "{winners:?}");
        assert_eq!(m.len(), 1);
    }
}
