//! Tenant naming: the wire-safe name grammar and the deterministic
//! boot-time naming scheme.

/// Whether `name` is a legal tenant name: `[a-zA-Z0-9_-]{1,64}`.
///
/// The grammar is deliberately URL-, header-, filename- and
/// Prometheus-label-safe, so a tenant name can appear verbatim in a
/// `/t/{tenant}/…` path, an `X-Mccatch-Tenant` header, a per-shard
/// snapshot filename, and a `tenant="…"` label without any escaping.
/// (The serving layer still escapes label values defensively.)
///
/// ```
/// use mccatch_tenant::valid_tenant_name;
///
/// assert!(valid_tenant_name("acme-prod_7"));
/// assert!(!valid_tenant_name(""));
/// assert!(!valid_tenant_name("a/b"));
/// assert!(!valid_tenant_name(&"x".repeat(65)));
/// ```
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// The deterministic name of the `i`-th boot tenant: spreadsheet-style
/// base-26 letters — `a`..`z`, then `aa`, `ab`, ….
///
/// The CLI's `--tenants N` pre-creates tenants named
/// `boot_tenant_name(0..N)`, so `--tenants 2` serves `/t/a/…` and
/// `/t/b/…` out of the box.
///
/// ```
/// use mccatch_tenant::boot_tenant_name;
///
/// assert_eq!(boot_tenant_name(0), "a");
/// assert_eq!(boot_tenant_name(25), "z");
/// assert_eq!(boot_tenant_name(26), "aa");
/// assert_eq!(boot_tenant_name(27), "ab");
/// ```
pub fn boot_tenant_name(i: usize) -> String {
    let mut n = i;
    let mut out = Vec::new();
    loop {
        out.push(b'a' + (n % 26) as u8);
        n /= 26;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    out.reverse();
    String::from_utf8(out).expect("ascii letters")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_grammar_is_exactly_the_documented_set() {
        assert!(valid_tenant_name("a"));
        assert!(valid_tenant_name("A-Z_09"));
        assert!(valid_tenant_name(&"y".repeat(64)));
        for bad in ["", " ", "a b", "a.b", "a/b", "ä", "a\n", "a\"b", "a\\b"] {
            assert!(!valid_tenant_name(bad), "{bad:?} must be rejected");
        }
        assert!(!valid_tenant_name(&"y".repeat(65)));
    }

    #[test]
    fn boot_names_are_unique_and_valid() {
        let names: Vec<String> = (0..100).map(boot_tenant_name).collect();
        for n in &names {
            assert!(valid_tenant_name(n), "{n:?}");
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "boot names must not collide");
        assert_eq!(&names[..4], &["a", "b", "c", "d"]);
        assert_eq!(names[26], "aa");
        assert_eq!(names[51], "az");
        assert_eq!(names[52], "ba");
    }
}
