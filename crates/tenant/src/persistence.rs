//! Per-tenant durability: the on-disk file layout, the per-tenant
//! manifest that makes a multi-file shard snapshot set atomic as a
//! unit, replay-log configuration and rotation, and the typed errors
//! of the tenant save/restore path.
//!
//! ## File layout
//!
//! Everything hangs off two operator-chosen base paths (the same paths
//! the single-tenant server uses for its own snapshot and replay log):
//!
//! ```text
//! {snap}.{tenant}.{shard}     one verified model snapshot per shard
//! {snap}.{tenant}.manifest    shard count + per-shard CRC-32s, written LAST
//! {log}.{tenant}.{shard}      NDJSON replay log per shard (window durability)
//! ```
//!
//! Tenant names are `[a-zA-Z0-9_-]{1,64}` (no `.`, no separators), so
//! the suffixes parse unambiguously and can never traverse paths.
//!
//! ## Why a manifest
//!
//! Each shard file is written atomically (temp + fsync + rename), but a
//! crash between two shard writes leaves a *mixed* set: shard 0 from
//! the new snapshot, shard 1 from the old one. The manifest closes that
//! hole: it is written last, also atomically, and records the CRC-32 of
//! every shard file it certifies. Restore refuses a tenant whose
//! manifest is missing ([`TenantPersistError::MissingManifest`]) or
//! whose shard files do not match it
//! ([`TenantPersistError::CrcMismatch`]) — a partial snapshot is a
//! typed error, never a silently inconsistent tenant.

use crate::error::TenantError;
use crate::name::valid_tenant_name;
use mccatch_persist::{FsyncPolicy, PersistError, PersistPoint, ReplayWriter};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Where a tenant's shard replay logs live and how eagerly they sync.
///
/// Configured once on the [`TenantSpec`](crate::TenantSpec): every
/// tenant stamped from the spec logs each accepted event to
/// `{base}.{tenant}.{shard}` so its sliding windows survive `kill -9`
/// the way the default tenant's does.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySpec {
    /// Base path; shard logs live at `{base}.{tenant}.{shard}`.
    pub base: PathBuf,
    /// Fsync policy applied to every shard log.
    pub fsync: FsyncPolicy,
}

/// What one tenant's warm restart recovered, kept on the restored
/// [`Tenant`](crate::Tenant) and exported per tenant by `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantRestoreStats {
    /// Shard detectors rebuilt through the verified bit-compare load.
    pub shards: usize,
    /// Replay-log events re-ingested to rebuild the sliding windows
    /// (0 when no shard had a log: windows were re-seeded from the
    /// snapshots' reference points instead).
    pub replayed_events: u64,
    /// The tenant generation (summed shard generations) at restore.
    pub generation: u64,
    /// The summed shard stream positions at restore.
    pub seq: u64,
}

/// One tenant re-registered by
/// [`TenantMap::restore_tenants`](crate::TenantMap::restore_tenants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoredTenant {
    /// The tenant's name, recovered from its snapshot file names.
    pub name: String,
    /// What the restore rebuilt.
    pub stats: TenantRestoreStats,
}

/// Stats of one completed per-tenant snapshot
/// ([`Tenant::save_snapshot`](crate::Tenant::save_snapshot)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSnapshotStats {
    /// Shard snapshot files written (plus one manifest).
    pub shards: usize,
    /// The tenant generation (summed shard generations) captured.
    pub generation: u64,
    /// The summed shard stream positions captured.
    pub seq: u64,
    /// Total snapshot bytes across the shard files.
    pub bytes: u64,
}

/// Everything that can go wrong persisting or restoring a tenant's
/// shard snapshot set. Unlike [`TenantError`] this wraps
/// [`PersistError`] (not `Clone`/`PartialEq`), so it is its own type;
/// every variant names the tenant and file it refers to — restore
/// failures are diagnosable and **never** panics.
#[derive(Debug)]
pub enum TenantPersistError {
    /// A filesystem operation outside the snapshot codec failed.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Saving, loading, or replaying one shard failed in the persist
    /// layer (corrupt snapshot, diverged rebuild, malformed log, …).
    Shard {
        /// The tenant being persisted or restored.
        tenant: String,
        /// The shard the failure belongs to.
        shard: usize,
        /// The underlying persist-layer error.
        source: PersistError,
    },
    /// Shard files exist but no manifest certifies them — the snapshot
    /// set is partial (a crash landed between the shard writes and the
    /// manifest) and must not be trusted.
    MissingManifest {
        /// The tenant whose manifest is absent.
        tenant: String,
        /// Where the manifest was expected.
        path: PathBuf,
    },
    /// The manifest exists but cannot be parsed, or certifies a
    /// different tenant than its file name claims.
    BadManifest {
        /// The unparsable manifest.
        path: PathBuf,
        /// What was wrong with it.
        message: String,
    },
    /// The manifest's shard count disagrees with the map's
    /// [`TenantSpec`](crate::TenantSpec) — the snapshot was taken under
    /// a different `--shards`, and hash routing would scatter its
    /// windows.
    ShardCountMismatch {
        /// The tenant being restored.
        tenant: String,
        /// Shards the manifest certifies.
        manifest: usize,
        /// Shards the map's spec stamps.
        spec: usize,
    },
    /// The manifest certifies a shard whose file is absent.
    MissingShard {
        /// The tenant being restored.
        tenant: String,
        /// The missing shard index.
        shard: usize,
        /// Where its file was expected.
        path: PathBuf,
    },
    /// A shard file exists beyond the manifest's shard count — the
    /// directory holds leftovers of a wider snapshot, and silently
    /// ignoring them would drop data.
    ExtraShard {
        /// The tenant being restored.
        tenant: String,
        /// The out-of-range shard index found on disk.
        shard: usize,
        /// The unexpected file.
        path: PathBuf,
    },
    /// A shard file's CRC-32 disagrees with the manifest — a torn or
    /// mixed snapshot set (e.g. a crash between shard writes).
    CrcMismatch {
        /// The tenant being restored.
        tenant: String,
        /// The mismatching shard.
        shard: usize,
        /// The CRC the manifest certifies.
        expected: u32,
        /// The CRC of the bytes on disk.
        got: u32,
    },
    /// Re-registering the restored tenant failed (e.g. the name is
    /// already live in the map).
    Tenant(TenantError),
}

impl std::fmt::Display for TenantPersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Self::Shard {
                tenant,
                shard,
                source,
            } => write!(f, "tenant {tenant:?} shard {shard}: {source}"),
            Self::MissingManifest { tenant, path } => write!(
                f,
                "tenant {tenant:?}: no manifest at {} — partial snapshot set",
                path.display()
            ),
            Self::BadManifest { path, message } => {
                write!(f, "bad manifest {}: {message}", path.display())
            }
            Self::ShardCountMismatch {
                tenant,
                manifest,
                spec,
            } => write!(
                f,
                "tenant {tenant:?}: snapshot has {manifest} shard(s) but the map is \
                 configured for {spec}"
            ),
            Self::MissingShard {
                tenant,
                shard,
                path,
            } => write!(
                f,
                "tenant {tenant:?}: shard {shard} snapshot missing at {}",
                path.display()
            ),
            Self::ExtraShard {
                tenant,
                shard,
                path,
            } => write!(
                f,
                "tenant {tenant:?}: unexpected shard {shard} file {} beyond the manifest",
                path.display()
            ),
            Self::CrcMismatch {
                tenant,
                shard,
                expected,
                got,
            } => write!(
                f,
                "tenant {tenant:?} shard {shard}: CRC {got:#010x} does not match the \
                 manifest's {expected:#010x}"
            ),
            Self::Tenant(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TenantPersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Shard { source, .. } => Some(source),
            Self::Tenant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TenantError> for TenantPersistError {
    fn from(e: TenantError) -> Self {
        Self::Tenant(e)
    }
}

/// Appends `suffix` to the path's final component (`with_extension`
/// would replace one, colliding sibling shard files).
fn append_os(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(suffix);
    PathBuf::from(os)
}

/// The on-disk location of one tenant shard's file — snapshot or replay
/// log, depending on which base is passed: the base path with
/// `.{tenant}.{shard}` appended.
pub fn shard_file_path(base: &Path, tenant: &str, shard: usize) -> PathBuf {
    append_os(base, &format!(".{tenant}.{shard}"))
}

/// The on-disk location of a tenant's snapshot manifest:
/// `{base}.{tenant}.manifest`.
pub fn tenant_manifest_path(base: &Path, tenant: &str) -> PathBuf {
    append_os(base, &format!(".{tenant}.manifest"))
}

/// Writes `bytes` to `path` atomically: sibling `.tmp`, fsync, rename.
/// A crash mid-write never leaves a torn file at `path`.
pub(crate) fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = append_os(path, ".tmp");
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    write().inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// A parsed `{base}.{tenant}.manifest`.
pub(crate) struct Manifest {
    /// Shards the snapshot set was written with.
    pub shards: usize,
    /// CRC-32 of each shard file, in shard order.
    pub crc32: Vec<u32>,
}

/// Atomically writes the manifest certifying `crcs` — called **last**
/// by the snapshot path, after every shard file has been renamed into
/// place, so its presence implies a complete, consistent set.
pub(crate) fn write_manifest_atomic(
    base: &Path,
    tenant: &str,
    crcs: &[u32],
) -> Result<(), TenantPersistError> {
    let path = tenant_manifest_path(base, tenant);
    let list = crcs
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let line = format!(
        "{{\"tenant\":\"{tenant}\",\"shards\":{},\"crc32\":[{list}]}}\n",
        crcs.len()
    );
    write_bytes_atomic(&path, line.as_bytes())
        .map_err(|source| TenantPersistError::Io { path, source })
}

/// Reads and validates the manifest at `path`, checking that it
/// certifies `tenant` (the name its file name claims).
pub(crate) fn read_manifest(path: &Path, tenant: &str) -> Result<Manifest, TenantPersistError> {
    let text = std::fs::read_to_string(path).map_err(|source| TenantPersistError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let bad = |message: String| TenantPersistError::BadManifest {
        path: path.to_path_buf(),
        message,
    };
    let (named, manifest) = parse_manifest(text.trim()).map_err(bad)?;
    if named != tenant {
        return Err(bad(format!(
            "manifest certifies tenant {named:?}, file name says {tenant:?}"
        )));
    }
    Ok(manifest)
}

/// Parses one `{"tenant":"…","shards":N,"crc32":[…]}` manifest line.
fn parse_manifest(s: &str) -> Result<(String, Manifest), String> {
    let s = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("manifest is not a JSON object")?;
    let s = expect_key(s, "tenant")?;
    let s = s.strip_prefix('"').ok_or("tenant value is not a string")?;
    let (tenant, s) = s.split_once('"').ok_or("unterminated tenant value")?;
    let s = s
        .trim_start()
        .strip_prefix(',')
        .ok_or("missing ',' after tenant")?;
    let s = expect_key(s, "shards")?;
    let (n_str, s) = s.split_once(',').ok_or("missing ',' after shards")?;
    let shards = n_str
        .trim()
        .parse::<usize>()
        .map_err(|e| format!("bad shard count {n_str:?}: {e}"))?;
    if shards == 0 {
        return Err("manifest shard count must be >= 1".to_owned());
    }
    let s = expect_key(s, "crc32")?;
    let s = s
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("crc32 is not an array")?;
    let crc32 = s
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<u32>()
                .map_err(|e| format!("bad crc32 entry {t:?}: {e}"))
        })
        .collect::<Result<Vec<u32>, String>>()?;
    if crc32.len() != shards {
        return Err(format!(
            "crc32 array has {} entries for {shards} shard(s)",
            crc32.len()
        ));
    }
    Ok((tenant.to_owned(), Manifest { shards, crc32 }))
}

/// Consumes `"key":` (with optional surrounding whitespace) from the
/// front of `s`.
fn expect_key<'a>(s: &'a str, key: &str) -> Result<&'a str, String> {
    let s = s.trim_start();
    let s = s
        .strip_prefix('"')
        .and_then(|s| s.strip_prefix(key))
        .and_then(|s| s.strip_prefix('"'))
        .ok_or_else(|| format!("missing \"{key}\" field"))?;
    let s = s.trim_start();
    s.strip_prefix(':')
        .ok_or_else(|| format!("missing ':' after \"{key}\""))
        .map(str::trim_start)
}

/// Rewrites one shard's replay log to exactly `entries` (the shard's
/// retained window, `(tick, point)` in window order) and returns a
/// fresh appender on the rotated log.
///
/// The rewrite is atomic (sibling temp + fsync + rename), and seqs are
/// back-filled so the last entry lands at `next_seq - 1` — a log
/// rotated this way is **self-contained**: replaying it alone rebuilds
/// the window and resumes the stream position, no older log needed.
/// Called at tenant creation (fresh log = seed window), at snapshot
/// time (log = checkpointed window, so logs never grow without bound),
/// and after restore (log = restored window).
pub(crate) fn rotate_replay_log<P: PersistPoint>(
    spec: &ReplaySpec,
    tenant: &str,
    shard: usize,
    entries: &[(u64, P)],
    next_seq: u64,
) -> Result<ReplayWriter, TenantPersistError> {
    let path = shard_file_path(&spec.base, tenant, shard);
    let tmp = append_os(&path, ".tmp");
    let shard_err = |source: PersistError| TenantPersistError::Shard {
        tenant: tenant.to_owned(),
        shard,
        source,
    };
    let rotate = || -> Result<ReplayWriter, TenantPersistError> {
        // A stale temp from a crashed rotation must not be appended to.
        let _ = std::fs::remove_file(&tmp);
        let mut w = ReplayWriter::open(&tmp, FsyncPolicy::Never).map_err(shard_err)?;
        let base_seq = next_seq.saturating_sub(entries.len() as u64);
        for (i, (tick, point)) in entries.iter().enumerate() {
            w.append(base_seq + i as u64, *tick, point)
                .map_err(shard_err)?;
        }
        w.sync().map_err(shard_err)?;
        drop(w);
        std::fs::rename(&tmp, &path).map_err(|source| TenantPersistError::Io {
            path: path.clone(),
            source,
        })?;
        ReplayWriter::open(&path, spec.fsync).map_err(shard_err)
    };
    rotate().inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// One tenant's files found on disk by [`discover_tenants`].
#[derive(Default)]
pub(crate) struct DiscoveredTenant {
    /// Shard index → snapshot file.
    pub shards: BTreeMap<usize, PathBuf>,
    /// The manifest file, when present.
    pub manifest: Option<PathBuf>,
}

/// Scans the snapshot base's directory for `{base}.{tenant}.{shard}`
/// and `{base}.{tenant}.manifest` files, grouped by tenant.
///
/// Only well-formed names with valid tenant components are collected;
/// anything else with the base prefix (the bare single-tenant snapshot,
/// `.tmp` leftovers of crashed writes, non-UTF-8 names) is ignored —
/// those are not part of any tenant snapshot set. Validation of what
/// was found (manifest present, indices contiguous, CRCs matching) is
/// the restore path's job.
pub(crate) fn discover_tenants(
    base: &Path,
) -> Result<BTreeMap<String, DiscoveredTenant>, TenantPersistError> {
    let dir = match base.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let Some(stem) = base.file_name().and_then(|s| s.to_str()) else {
        return Err(TenantPersistError::Io {
            path: base.to_path_buf(),
            source: std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "snapshot base has no UTF-8 file name",
            ),
        });
    };
    let prefix = format!("{stem}.");
    let io_err = |source: std::io::Error| TenantPersistError::Io {
        path: dir.to_path_buf(),
        source,
    };
    let mut out: BTreeMap<String, DiscoveredTenant> = BTreeMap::new();
    for entry in std::fs::read_dir(dir).map_err(io_err)? {
        let entry = entry.map_err(io_err)?;
        let file_name = entry.file_name();
        let Some(name) = file_name.to_str() else {
            continue;
        };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        // `rest` should be `{tenant}.{shard}` or `{tenant}.manifest`;
        // tenant names cannot contain '.', so the rightmost dot splits
        // them. `.tmp` leftovers fail the name check and fall through.
        let Some((tenant, suffix)) = rest.rsplit_once('.') else {
            continue;
        };
        if !valid_tenant_name(tenant) {
            continue;
        }
        let slot = out.entry(tenant.to_owned()).or_default();
        if suffix == "manifest" {
            slot.manifest = Some(entry.path());
        } else if suffix.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(idx) = suffix.parse::<usize>() {
                slot.shards.insert(idx, entry.path());
            }
        }
    }
    // A tenant with neither a manifest nor shard files cannot appear;
    // one with junk-only matches was never inserted.
    out.retain(|_, d| d.manifest.is_some() || !d.shards.is_empty());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_append_tenant_shard_and_manifest_suffixes() {
        let base = Path::new("/tmp/snap.bin");
        assert_eq!(
            shard_file_path(base, "acme", 3),
            PathBuf::from("/tmp/snap.bin.acme.3")
        );
        assert_eq!(
            tenant_manifest_path(base, "acme"),
            PathBuf::from("/tmp/snap.bin.acme.manifest")
        );
    }

    #[test]
    fn manifest_round_trips() {
        let (tenant, m) =
            parse_manifest("{\"tenant\":\"acme\",\"shards\":2,\"crc32\":[7,4294967295]}").unwrap();
        assert_eq!(tenant, "acme");
        assert_eq!(m.shards, 2);
        assert_eq!(m.crc32, vec![7, u32::MAX]);
    }

    #[test]
    fn malformed_manifests_are_typed_errors() {
        for bad in [
            "",
            "not json",
            "{\"tenant\":\"a\",\"shards\":0,\"crc32\":[]}",
            "{\"tenant\":\"a\",\"shards\":2,\"crc32\":[1]}",
            "{\"tenant\":\"a\",\"shards\":1,\"crc32\":[badcrc]}",
            "{\"shards\":1,\"crc32\":[1]}",
            // torn mid-write (no trailing brace)
            "{\"tenant\":\"a\",\"shards\":2,\"crc32\":[1,2",
        ] {
            assert!(parse_manifest(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn discovery_groups_by_tenant_and_ignores_junk() {
        let dir = std::env::temp_dir().join(format!(
            "mccatch-discover-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("snap.bin");
        for name in [
            "snap.bin", // bare single-tenant snapshot: not a tenant file
            "snap.bin.a.0",
            "snap.bin.a.1",
            "snap.bin.a.manifest",
            "snap.bin.b.0",
            "snap.bin.a.0.tmp",     // crashed write leftover
            "snap.bin.tmp",         // crashed single-tenant write
            "snap.bin.bad name.0",  // invalid tenant name
            "snap.bin.a.notashard", // neither index nor manifest
            "unrelated.txt",
        ] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let found = discover_tenants(&base).unwrap();
        assert_eq!(
            found.keys().cloned().collect::<Vec<_>>(),
            vec!["a".to_owned(), "b".to_owned()]
        );
        let a = &found["a"];
        assert_eq!(a.shards.keys().copied().collect::<Vec<_>>(), vec![0, 1]);
        assert!(a.manifest.is_some());
        let b = &found["b"];
        assert_eq!(b.shards.len(), 1);
        assert!(
            b.manifest.is_none(),
            "b has no manifest — restore rejects it"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn display_names_tenant_and_file() {
        let e = TenantPersistError::CrcMismatch {
            tenant: "acme".to_owned(),
            shard: 1,
            expected: 0xDEAD_BEEF,
            got: 0x1234_5678,
        };
        let msg = e.to_string();
        assert!(msg.contains("acme") && msg.contains("0xdeadbeef"), "{msg}");
        let e = TenantPersistError::MissingManifest {
            tenant: "a".to_owned(),
            path: PathBuf::from("/x/snap.a.manifest"),
        };
        assert!(e.to_string().contains("partial"), "{e}");
    }
}
