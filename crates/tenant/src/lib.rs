//! # mccatch-tenant — sharded multi-tenant serving
//!
//! MCCATCH's serving tier holds one model per process; this crate turns
//! that into **a service that serves many users**: a [`TenantMap`] —
//! a concurrent registry of named [`Tenant`]s, each owning its own
//! shard set of `StreamDetector`s with independent window, refit, and
//! drift state.
//!
//! ```text
//!                         ┌────────────────── TenantMap ──────────────────┐
//!   /t/acme/ingest ─────► │ "acme" ─► Tenant ─► ShardRouter ─► shard 0..N │
//!   /t/beta/score  ─────► │ "beta" ─► Tenant ─► ShardRouter ─► shard 0..M │
//!                         └───────────────────────────────────────────────┘
//!                            each shard: window + refit worker + ModelStore
//! ```
//!
//! * **Key-routed shards** — every point hashes to a stable
//!   [`RouteKey`]; the [`ShardRouter`] maps it to one shard, so a
//!   point's neighborhood accumulates in one window and routing is
//!   identical across restarts and replays.
//! * **Fan-out fit** — creating (or refitting) a tenant partitions its
//!   seed across the shards and fits every shard on its own thread;
//!   wall-clock cost is the slowest shard, not the sum.
//! * **Ensemble scoring** — a query is scored by every shard model and
//!   served the **minimum**: as normal as the shard that recognizes it
//!   best. With one shard this is bit-identical to the single-store
//!   serving path (property-tested).
//! * **Isolation & backpressure** — tenants share nothing but the
//!   process: separate windows, schedules, generations. Each shard has
//!   a bounded ingest admission ([`TenantSpec::ingest_queue`]); a hot
//!   tenant gets [`TenantError::ShardSaturated`] instead of occupying
//!   the serving workers other tenants need.
//! * **Durability** — [`Tenant::save_snapshot`] writes one verified
//!   snapshot per shard plus a manifest (committed last), per-shard
//!   replay logs ([`TenantSpec::replay`]) let the sliding windows
//!   survive `kill -9`, and [`TenantMap::restore_tenants`] rediscovers
//!   and rebuilds the whole fleet at boot with generation and stream
//!   position resumed — corrupt or partial sets fail with typed
//!   [`TenantPersistError`]s, never panics.
//!
//! ## Quickstart
//!
//! ```
//! use mccatch_core::McCatch;
//! use mccatch_index::KdTreeBuilder;
//! use mccatch_metric::Euclidean;
//! use mccatch_stream::{RefitPolicy, StreamConfig};
//! use mccatch_tenant::{TenantMap, TenantSpec};
//!
//! let map = TenantMap::new(
//!     McCatch::builder().build()?,
//!     Euclidean,
//!     KdTreeBuilder::default(),
//!     TenantSpec {
//!         shards: 2,
//!         stream: StreamConfig {
//!             capacity: 512,
//!             policy: RefitPolicy::Manual,
//!             ..StreamConfig::default()
//!         },
//!         ..TenantSpec::default()
//!     },
//! )?;
//!
//! // Each tenant fits its shards in parallel from its own seed…
//! let mut seed: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
//!     .collect();
//! seed.push(vec![500.0, 500.0]);
//! let acme = map.create_seeded("acme", seed)?;
//! map.create("beta")?; // cold start: degenerate until ingest + refit
//!
//! // …ingest routes by point key, scoring serves the shard ensemble.
//! let event = acme.ingest(vec![4.0, 4.0])?;
//! assert!(!event.flagged);
//! assert!(acme.score(&vec![900.0, 900.0]) > acme.score(&vec![4.5, 4.5]));
//!
//! // Tenants are isolated: beta never moved.
//! assert_eq!(map.get("beta").unwrap().generation(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `mccatch` facade re-exports this crate as `mccatch::tenant`, and
//! `mccatch-server` wires it to `/t/{tenant}/…` routing, tenant
//! lifecycle endpoints, per-tenant snapshots, and labeled metrics.

#![deny(missing_docs)]

mod error;
mod map;
mod name;
mod persistence;
mod router;
mod tenant;

pub use error::TenantError;
pub use map::TenantMap;
pub use name::{boot_tenant_name, valid_tenant_name};
pub use persistence::{
    shard_file_path, tenant_manifest_path, ReplaySpec, RestoredTenant, TenantPersistError,
    TenantRestoreStats, TenantSnapshotStats,
};
pub use router::{RouteKey, ShardRouter};
pub use tenant::{ShardQueue, Tenant, TenantSpec};
