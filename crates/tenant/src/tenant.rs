//! One tenant: a shard set of independent stream detectors behind a
//! deterministic router, with bounded per-shard ingest admission and a
//! parallel fan-out fit/refit path.

use crate::error::TenantError;
use crate::persistence::{
    rotate_replay_log, shard_file_path, write_bytes_atomic, write_manifest_atomic, ReplaySpec,
    TenantPersistError, TenantRestoreStats, TenantSnapshotStats,
};
use crate::router::{RouteKey, ShardRouter};
use mccatch_core::{McCatch, Model};
use mccatch_index::IndexBuilder;
use mccatch_metric::Metric;
use mccatch_persist::{crc32, save_model, PersistPoint, ReplayWriter};
use mccatch_stream::{ScoredEvent, StreamConfig, StreamDetector, StreamStats};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The shape every tenant in a [`TenantMap`](crate::TenantMap) is
/// stamped from: how many shards it owns, each shard's independent
/// window/refit/drift configuration, and the bounded per-shard ingest
/// admission.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Shards per tenant (`>= 1`). One shard reproduces today's
    /// single-store serving path bit for bit; more shards partition
    /// ingest by routing key and serve the min-score ensemble.
    pub shards: usize,
    /// Per-shard stream configuration: every shard owns its own
    /// sliding window, refit policy, and drift tracker.
    pub stream: StreamConfig,
    /// Bounded per-shard ingest admission (`>= 1`): at most this many
    /// ingests may be in flight on one shard at once; excess calls are
    /// rejected with [`TenantError::ShardSaturated`] instead of
    /// queueing, so one hot tenant's backlog can never occupy the
    /// serving workers that other tenants need.
    pub ingest_queue: usize,
    /// Per-shard replay logs at `{base}.{tenant}.{shard}`: when set,
    /// every accepted ingest is appended to its shard's NDJSON log so
    /// the sliding windows survive `kill -9`. Creating a tenant starts
    /// its logs at the seed window; a snapshot
    /// ([`Tenant::save_snapshot`]) rotates each log down to the
    /// checkpointed window, so logs never grow without bound. `None`
    /// (the default) keeps ingest entirely in memory.
    pub replay: Option<ReplaySpec>,
}

impl Default for TenantSpec {
    /// One shard, the default stream schedule, a 1024-deep ingest
    /// admission bound, and no replay logging.
    fn default() -> Self {
        Self {
            shards: 1,
            stream: StreamConfig::default(),
            ingest_queue: 1024,
            replay: None,
        }
    }
}

impl TenantSpec {
    /// Checks every knob, returning the first violation.
    pub fn validate(&self) -> Result<(), TenantError> {
        if self.shards == 0 {
            return Err(TenantError::InvalidShards { got: 0 });
        }
        if self.ingest_queue == 0 {
            return Err(TenantError::InvalidQueue { got: 0 });
        }
        self.stream.validate().map_err(TenantError::Stream)
    }
}

/// A point-in-time gauge of one shard's bounded ingest admission, for
/// queue-depth metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardQueue {
    /// Which shard.
    pub shard: usize,
    /// Ingest calls currently in flight on this shard.
    pub depth: usize,
    /// The configured in-flight bound.
    pub capacity: usize,
    /// Ingest calls rejected with `ShardSaturated` so far.
    pub rejected: u64,
}

struct Shard<P, M, B> {
    detector: StreamDetector<P, M, B>,
    /// Ingest calls currently inside `detector.ingest` via this shard.
    inflight: AtomicUsize,
    capacity: usize,
    rejected: AtomicU64,
    /// This shard's replay-log appender, when the spec configures one.
    /// The lock is held across score+append (and across snapshot-time
    /// rotation), so the log's seq/tick order always matches the
    /// window's.
    replay: Option<Mutex<ReplayWriter>>,
}

/// Decrements the in-flight gauge even if the ingest panics.
struct Admission<'a>(&'a AtomicUsize);

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A named tenant: its own shard set of [`StreamDetector`]s behind a
/// [`ShardRouter`], fully isolated from every other tenant — separate
/// windows, separate refit schedules, separate generations, separate
/// backpressure.
///
/// Scoring fans out to every shard and serves the **ensemble minimum**:
/// a query is as normal as the shard that recognizes it best, which for
/// a routed-partition ensemble is the shard holding its neighborhood.
/// With one shard this degenerates to exactly the single-store path —
/// one `snapshot_tagged()` and one `score_batch` call — and is
/// bit-identical to it (property-tested).
///
/// The tenant's **generation** is the sum of its shard generations:
/// monotone (each shard's is), equal to the shard generation in the
/// 1-shard case, and bumped by exactly one per single-shard refit.
pub struct Tenant<P, M, B> {
    name: String,
    router: ShardRouter,
    shards: Vec<Shard<P, M, B>>,
    /// The spec's replay configuration, kept for snapshot-time log
    /// rotation.
    replay: Option<ReplaySpec>,
    /// Set when this tenant was rebuilt from disk rather than created.
    restored: Option<TenantRestoreStats>,
}

impl<P, M, B> Tenant<P, M, B>
where
    P: RouteKey + PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    /// Builds a tenant from `seed`: the seed is partitioned across
    /// `spec.shards` by the router, and every shard's initial fit runs
    /// on its own thread — the fan-out fit path. The slowest shard
    /// bounds wall-clock time instead of the sum of all shards.
    ///
    /// `name` is trusted here (the map validates it); `spec` is not.
    pub fn new(
        name: impl Into<String>,
        detector: &McCatch,
        metric: &M,
        builder: &B,
        spec: &TenantSpec,
        seed: Vec<P>,
    ) -> Result<Self, TenantError> {
        spec.validate()?;
        let router = ShardRouter::new(spec.shards)?;
        let mut partitions: Vec<Vec<P>> = (0..spec.shards).map(|_| Vec::new()).collect();
        for p in seed {
            partitions[router.route(&p)].push(p);
        }
        // Fan-out fit: one thread per shard, each running the ordinary
        // StreamDetector boot (initial batch fit + worker start).
        let detectors: Result<Vec<_>, _> = std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .map(|part| {
                    let (d, m, b) = (detector.clone(), metric.clone(), builder.clone());
                    let config = spec.stream.clone();
                    scope.spawn(move || StreamDetector::new(config, d, m, b, part))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard fit thread panicked"))
                .collect()
        });
        let mut shards: Vec<Shard<P, M, B>> = detectors
            .map_err(TenantError::Stream)?
            .into_iter()
            .map(|detector| Shard {
                detector,
                inflight: AtomicUsize::new(0),
                capacity: spec.ingest_queue,
                rejected: AtomicU64::new(0),
                replay: None,
            })
            .collect();
        let name = name.into();
        // A created tenant starts its replay logs at the seed window
        // (truncating any stale log a deleted namesake left behind), so
        // every log is self-contained from the first event.
        attach_replay_logs(&name, spec, &mut shards)?;
        Ok(Self {
            name,
            router,
            shards,
            replay: spec.replay.clone(),
            restored: None,
        })
    }

    /// Rebuilds a tenant around shard detectors already restored from
    /// disk (no initial fit). The shard count was validated against the
    /// spec by the restore path; replay logs are rotated down to each
    /// restored window so they are self-contained going forward.
    pub(crate) fn from_restored(
        name: &str,
        spec: &TenantSpec,
        detectors: Vec<StreamDetector<P, M, B>>,
        restored: TenantRestoreStats,
    ) -> Result<Self, TenantError> {
        let router = ShardRouter::new(detectors.len())?;
        let mut shards: Vec<Shard<P, M, B>> = detectors
            .into_iter()
            .map(|detector| Shard {
                detector,
                inflight: AtomicUsize::new(0),
                capacity: spec.ingest_queue,
                rejected: AtomicU64::new(0),
                replay: None,
            })
            .collect();
        attach_replay_logs(name, spec, &mut shards)?;
        Ok(Self {
            name: name.to_owned(),
            router,
            shards,
            replay: spec.replay.clone(),
            restored: Some(restored),
        })
    }

    /// What this tenant's warm restart recovered — `None` for a tenant
    /// created live rather than restored from disk.
    pub fn restore_stats(&self) -> Option<TenantRestoreStats> {
        self.restored
    }

    /// Persists every shard to `{base}.{tenant}.{shard}` and then —
    /// **last** — the `{base}.{tenant}.manifest` certifying the set
    /// (shard count + per-shard CRC-32s). Each file is written
    /// atomically, and the trailing manifest makes the *set* atomic: a
    /// crash anywhere in between leaves the previous manifest/file
    /// pairing, never a half-new half-old snapshot that restore would
    /// trust.
    ///
    /// When replay logs are configured, each shard's log is rotated
    /// down to the checkpointed window under the same lock that ingest
    /// appends hold, so snapshot + log stay mutually consistent and
    /// logs never grow without bound.
    pub fn save_snapshot(&self, base: &Path) -> Result<TenantSnapshotStats, TenantPersistError> {
        let mut crcs = Vec::with_capacity(self.shards.len());
        let (mut generation, mut seq, mut bytes) = (0u64, 0u64, 0u64);
        for (shard, s) in self.shards.iter().enumerate() {
            // Hold the shard's replay lock across checkpoint + rotation
            // so no ingest lands between the snapshot and the rewritten
            // log (ingest takes the same lock before appending).
            let mut log = s
                .replay
                .as_ref()
                .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()));
            let cp = s.detector.checkpoint();
            let mut buf = Vec::new();
            let written = save_model(cp.model.as_ref(), cp.generation, cp.seq, &mut buf).map_err(
                |source| TenantPersistError::Shard {
                    tenant: self.name.clone(),
                    shard,
                    source,
                },
            )?;
            let path = shard_file_path(base, &self.name, shard);
            write_bytes_atomic(&path, &buf)
                .map_err(|source| TenantPersistError::Io { path, source })?;
            crcs.push(crc32(&buf));
            if let (Some(log), Some(rs)) = (log.as_mut(), &self.replay) {
                **log = rotate_replay_log(rs, &self.name, shard, &cp.entries, cp.seq)?;
            }
            generation += cp.generation;
            seq += cp.seq;
            bytes += written;
        }
        write_manifest_atomic(base, &self.name, &crcs)?;
        Ok(TenantSnapshotStats {
            shards: self.shards.len(),
            generation,
            seq,
            bytes,
        })
    }

    /// This tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many shards this tenant owns.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The router that assigns points to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Direct access to one shard's detector — the serving layer uses
    /// this for per-shard snapshots and live index statistics.
    pub fn shard_detector(&self, shard: usize) -> Option<&StreamDetector<P, M, B>> {
        self.shards.get(shard).map(|s| &s.detector)
    }

    /// Scores `queries` against the shard ensemble: one tagged snapshot
    /// per shard, element-wise **minimum** across the shard scores, and
    /// the summed snapshot generations as the batch tag. With a single
    /// shard this is exactly one `snapshot_tagged()` + `score_batch`
    /// pair — bit-identical to the single-store path.
    pub fn score_batch(&self, queries: &[P]) -> (Vec<f64>, u64) {
        let t0 = std::time::Instant::now();
        // When this batch runs inside a traced request, the fan-out
        // becomes a `tenant_fanout` span with one `shard_score` child
        // per shard. The stage histogram is recorded directly at the
        // end (not via the free `record_stage`) so the trace carries
        // the structured per-shard children instead of one flat span.
        let fanout = mccatch_obs::trace::current().map(|h| h.child("tenant_fanout"));
        let snaps: Vec<(Arc<dyn Model<P>>, u64)> = self
            .shards
            .iter()
            .map(|s| s.detector.store().snapshot_tagged())
            .collect();
        assert!(!snaps.is_empty(), "a tenant has at least one shard");
        let mut generation = 0;
        let mut scores = Vec::new();
        for (shard, (model, g)) in snaps.into_iter().enumerate() {
            let _child = fanout
                .as_ref()
                .map(|f| f.child("shard_score").with_attr("shard", shard.to_string()));
            generation += g;
            if shard == 0 {
                scores = model.score_batch(queries);
            } else {
                for (acc, s) in scores.iter_mut().zip(model.score_batch(queries)) {
                    *acc = acc.min(s);
                }
            }
        }
        drop(fanout);
        mccatch_obs::global().record_stage_id(mccatch_obs::StageId::TenantFanout, t0.elapsed());
        (scores, generation)
    }

    /// Scores one query against the shard ensemble (minimum).
    pub fn score(&self, query: &P) -> f64 {
        self.score_batch(std::slice::from_ref(query))
            .0
            .pop()
            .expect("one score per query")
    }

    /// Ingests one event into the shard its routing key selects —
    /// prequential scoring, window push, and refit policy all run on
    /// that shard alone. Fails with
    /// [`ShardSaturated`](TenantError::ShardSaturated) when the shard's
    /// bounded admission is full.
    pub fn ingest(&self, point: P) -> Result<ScoredEvent, TenantError> {
        self.ingest_to(self.router.route(&point), point)
    }

    /// Ingests into an explicitly chosen shard (for callers that
    /// partition upstream), with the same bounded admission.
    pub fn ingest_to(&self, shard: usize, point: P) -> Result<ScoredEvent, TenantError> {
        let Some(s) = self.shards.get(shard) else {
            return Err(TenantError::NoSuchShard {
                shard,
                shards: self.shards.len(),
            });
        };
        let mut span = mccatch_obs::trace::current().map(|h| {
            h.child("shard_ingest")
                .with_attr("shard", shard.to_string())
        });
        // Bounded admission: claim a slot or reject immediately. The
        // rejection is the backpressure signal — nothing ever queues
        // behind a hot shard, so serving workers stay available to
        // other tenants. The CAS loop never blocks, but contention (and
        // a rejection) still shows up as the `queue_admit` child span.
        let admit = span.as_ref().map(|sp| sp.child("queue_admit"));
        let mut depth = s.inflight.load(Ordering::Acquire);
        loop {
            if depth >= s.capacity {
                s.rejected.fetch_add(1, Ordering::AcqRel);
                if let Some(sp) = span.as_mut() {
                    sp.attr("admission", "rejected".to_owned());
                }
                drop(admit);
                return Err(TenantError::ShardSaturated {
                    tenant: self.name.clone(),
                    shard,
                    capacity: s.capacity,
                });
            }
            match s.inflight.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(current) => depth = current,
            }
        }
        drop(admit);
        let _admission = Admission(&s.inflight);
        // Made current so the shard detector's per-event `score` span
        // nests under this one.
        let _cur = span
            .as_ref()
            .map(mccatch_obs::trace::TraceSpan::make_current);
        Ok(match &s.replay {
            Some(log) => {
                // The log lock is held across score+append so the log's
                // seq order matches the window's, and a concurrent
                // snapshot (which rotates the log under this lock) sees
                // a consistent window/log pair.
                let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
                let event = s.detector.ingest(point.clone());
                // Best-effort: a full disk must not fail live ingest;
                // the torn tail is recovered from at restore time.
                let _ = log.append(event.seq, event.tick, &point);
                event
            }
            None => s.detector.ingest(point),
        })
    }

    /// Synchronously refits **every** shard on its current window, in
    /// parallel (fan-out refit), and returns the new tenant generation.
    /// The first shard error wins; other shards still complete their
    /// refit before this returns.
    pub fn refit_now(&self) -> Result<u64, TenantError> {
        // Each shard thread gets its own `shard_refit` span handle made
        // current there, so the stream layer's refit stages nest per
        // shard inside whichever trace covers this fan-out.
        let parent = mccatch_obs::trace::current();
        let results: Vec<Result<u64, _>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let child = parent
                        .as_ref()
                        .map(|h| h.child("shard_refit").with_attr("shard", i.to_string()));
                    scope.spawn(move || {
                        let _cur = child
                            .as_ref()
                            .map(mccatch_obs::trace::TraceSpan::make_current);
                        s.detector.refit_now()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard refit thread panicked"))
                .collect()
        });
        let mut generation = 0;
        for r in results {
            generation += r.map_err(TenantError::Stream)?;
        }
        Ok(generation)
    }

    /// The tenant generation: the sum of its shard generations
    /// (monotone; equals the shard generation when there is one shard).
    pub fn generation(&self) -> u64 {
        self.shards.iter().map(|s| s.detector.generation()).sum()
    }

    /// One [`StreamStats`] per shard, in shard order.
    pub fn shard_stats(&self) -> Vec<StreamStats> {
        self.shards.iter().map(|s| s.detector.stats()).collect()
    }

    /// One admission gauge per shard, in shard order.
    pub fn queue_stats(&self) -> Vec<ShardQueue> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardQueue {
                shard,
                depth: s.inflight.load(Ordering::Acquire),
                capacity: s.capacity,
                rejected: s.rejected.load(Ordering::Acquire),
            })
            .collect()
    }
}

/// Rotates every shard's replay log to its current window and attaches
/// the appenders — shared by tenant creation (seed window) and restore
/// (recovered window). No-op when the spec has no replay configuration.
fn attach_replay_logs<P, M, B>(
    name: &str,
    spec: &TenantSpec,
    shards: &mut [Shard<P, M, B>],
) -> Result<(), TenantError>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
    B: IndexBuilder<P, M> + Clone + Send + Sync + 'static,
    B::Index: Send + Sync + 'static,
{
    let Some(rs) = &spec.replay else {
        return Ok(());
    };
    for (shard, s) in shards.iter_mut().enumerate() {
        let cp = s.detector.checkpoint();
        let writer = rotate_replay_log(rs, name, shard, &cp.entries, cp.seq).map_err(|e| {
            TenantError::Replay {
                tenant: name.to_owned(),
                shard,
                message: e.to_string(),
            }
        })?;
        s.replay = Some(Mutex::new(writer));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::KdTreeBuilder;
    use mccatch_metric::Euclidean;
    use mccatch_stream::RefitPolicy;

    fn grid(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect()
    }

    fn spec(shards: usize) -> TenantSpec {
        TenantSpec {
            shards,
            stream: StreamConfig {
                capacity: 512,
                policy: RefitPolicy::Manual,
                ..StreamConfig::default()
            },
            ingest_queue: 8,
            replay: None,
        }
    }

    fn tenant(shards: usize, seed: Vec<Vec<f64>>) -> Tenant<Vec<f64>, Euclidean, KdTreeBuilder> {
        Tenant::new(
            "t",
            &McCatch::builder().build().unwrap(),
            &Euclidean,
            &KdTreeBuilder::default(),
            &spec(shards),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let detector = McCatch::builder().build().unwrap();
        let no_shards = TenantSpec {
            shards: 0,
            ..spec(1)
        };
        assert_eq!(
            Tenant::<Vec<f64>, _, _>::new(
                "t",
                &detector,
                &Euclidean,
                &KdTreeBuilder::default(),
                &no_shards,
                vec![]
            )
            .err(),
            Some(TenantError::InvalidShards { got: 0 })
        );
        let no_queue = TenantSpec {
            ingest_queue: 0,
            ..spec(1)
        };
        assert_eq!(
            Tenant::<Vec<f64>, _, _>::new(
                "t",
                &detector,
                &Euclidean,
                &KdTreeBuilder::default(),
                &no_queue,
                vec![]
            )
            .err(),
            Some(TenantError::InvalidQueue { got: 0 })
        );
    }

    #[test]
    fn fan_out_fit_partitions_the_seed_by_router() {
        let mut seed = grid(100);
        seed.push(vec![500.0, 500.0]);
        let t = tenant(4, seed.clone());
        // Every seed point is in exactly one shard window, and each
        // shard holds exactly its routed partition.
        let total: usize = t.shard_stats().iter().map(|s| s.window_len).sum();
        assert_eq!(total, seed.len());
        for (shard, stats) in t.shard_stats().iter().enumerate() {
            let expected = seed
                .iter()
                .filter(|p| t.router().route(*p) == shard)
                .count();
            assert_eq!(stats.window_len, expected, "shard {shard}");
        }
    }

    #[test]
    fn single_shard_scores_bit_identical_to_a_plain_detector() {
        let mut seed = grid(100);
        seed.push(vec![500.0, 500.0]);
        let t = tenant(1, seed.clone());
        let plain = StreamDetector::new(
            spec(1).stream,
            McCatch::builder().build().unwrap(),
            Euclidean,
            KdTreeBuilder::default(),
            seed,
        )
        .unwrap();
        let queries: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.3, 4.2]).collect();
        let (scores, generation) = t.score_batch(&queries);
        assert_eq!(scores, plain.score_batch(&queries), "bit-equality");
        assert_eq!(generation, plain.generation());
        // …and it survives ingest + refit on both sides.
        for p in [vec![4.0, 4.0], vec![800.0, -3.0], vec![1.5, 9.0]] {
            t.ingest(p.clone()).unwrap();
            plain.ingest(p);
        }
        t.refit_now().unwrap();
        plain.refit_now().unwrap();
        let (scores, generation) = t.score_batch(&queries);
        assert_eq!(
            scores,
            plain.score_batch(&queries),
            "bit-equality after refit"
        );
        assert_eq!(generation, plain.generation());
    }

    #[test]
    fn ensemble_score_is_the_minimum_across_shards() {
        let mut seed = grid(200);
        seed.push(vec![500.0, 500.0]);
        let t = tenant(3, seed);
        let queries: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let (scores, _) = t.score_batch(&queries);
        for (qi, q) in queries.iter().enumerate() {
            let per_shard: Vec<f64> = (0..t.shards())
                .map(|s| t.shard_detector(s).unwrap().score(q))
                .collect();
            let expected = per_shard.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(scores[qi], expected, "query {qi}");
        }
    }

    #[test]
    fn ingest_routes_to_the_shard_the_router_names() {
        let t = tenant(4, grid(40));
        let before: Vec<u64> = t.shard_stats().iter().map(|s| s.events_ingested).collect();
        let p = vec![7.25, -1.5];
        let expected = t.router().route(&p);
        t.ingest(p).unwrap();
        let after: Vec<u64> = t.shard_stats().iter().map(|s| s.events_ingested).collect();
        for shard in 0..4 {
            let delta = after[shard] - before[shard];
            assert_eq!(delta, u64::from(shard == expected), "shard {shard}");
        }
    }

    #[test]
    fn explicit_shard_ingest_checks_bounds() {
        let t = tenant(2, grid(20));
        assert!(t.ingest_to(1, vec![1.0, 1.0]).is_ok());
        assert_eq!(
            t.ingest_to(2, vec![1.0, 1.0]).err(),
            Some(TenantError::NoSuchShard {
                shard: 2,
                shards: 2
            })
        );
    }

    #[test]
    fn saturated_admission_rejects_and_counts() {
        let t = tenant(1, grid(20));
        // Fill the bounded admission by hand (unit test privilege): the
        // next ingest must be rejected, not queued.
        t.shards[0]
            .inflight
            .store(t.shards[0].capacity, Ordering::Release);
        let err = t.ingest(vec![1.0, 1.0]).unwrap_err();
        assert!(
            matches!(err, TenantError::ShardSaturated { shard: 0, .. }),
            "{err}"
        );
        assert_eq!(t.queue_stats()[0].rejected, 1);
        // Draining the admission restores service.
        t.shards[0].inflight.store(0, Ordering::Release);
        assert!(t.ingest(vec![1.0, 1.0]).is_ok());
        assert_eq!(t.queue_stats()[0].depth, 0, "admission slot released");
    }

    #[test]
    fn refit_now_advances_every_shard_and_sums_generations() {
        let t = tenant(3, grid(90));
        assert_eq!(t.generation(), 0);
        assert_eq!(t.refit_now().unwrap(), 3);
        assert_eq!(t.generation(), 3);
        for stats in t.shard_stats() {
            assert_eq!(stats.generation, 1);
        }
    }
}
