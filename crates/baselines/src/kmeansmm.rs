//! KMeans-- (Chawla & Gionis, SDM 2013): unified clustering and outlier
//! detection. Each Lloyd iteration assigns points to the nearest centroid
//! but *excludes the `l` farthest points* from the centroid update; those
//! excluded points are the outliers. Score = distance to nearest centroid.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs KMeans-- with `k` clusters, `l` outliers, a fixed iteration budget
/// and a seed for the initial centroids. Returns per-point scores
/// (distance to the nearest centroid; the `l` largest are the outliers).
pub fn kmeans_minus_minus(
    points: &[Vec<f64>],
    k: usize,
    l: usize,
    iterations: usize,
    seed: u64,
) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let dim = points[0].len();
    let mut rng = StdRng::seed_from_u64(seed);
    // k-means++-style seeding, deterministic.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..n)].clone());
    while centroids.len() < k {
        let weights: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            centroids.push(points[rng.random_range(0..n)].clone());
            continue;
        }
        let mut target = rng.random::<f64>() * total;
        let mut chosen = n - 1;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }
    let mut dists = vec![0.0f64; n];
    for _ in 0..iterations {
        // Assignment + distances.
        let mut assign = vec![0usize; n];
        for (i, p) in points.iter().enumerate() {
            let (mut bd, mut bc) = (f64::INFINITY, 0usize);
            for (c, cent) in centroids.iter().enumerate() {
                let d = dist2(p, cent);
                if d < bd {
                    bd = d;
                    bc = c;
                }
            }
            assign[i] = bc;
            dists[i] = bd;
        }
        // The l farthest points are excluded from the update.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| dists[b].total_cmp(&dists[a]).then(a.cmp(&b)));
        let excluded: Vec<bool> = {
            let mut e = vec![false; n];
            for &i in order.iter().take(l.min(n)) {
                e[i] = true;
            }
            e
        };
        // Update centroids from the retained points.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            if excluded[i] {
                continue;
            }
            counts[assign[i]] += 1;
            for d in 0..dim {
                sums[assign[i]][d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dim {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
    }
    // Final scores: sqrt distance to the nearest centroid.
    points
        .iter()
        .map(|p| {
            centroids
                .iter()
                .map(|c| dist2(p, c))
                .fold(f64::INFINITY, f64::min)
                .sqrt()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outliers_score_highest() {
        let mut pts: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1])
            .collect();
        for i in 0..40 {
            pts.push(vec![20.0 + (i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1]);
        }
        pts.push(vec![10.0, 30.0]);
        pts.push(vec![-10.0, -30.0]);
        let s = kmeans_minus_minus(&pts, 2, 2, 20, 7);
        let max_inlier = s[..80].iter().cloned().fold(f64::MIN, f64::max);
        assert!(s[80] > max_inlier);
        assert!(s[81] > max_inlier);
    }

    #[test]
    fn deterministic() {
        let pts: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, (i * 3 % 11) as f64])
            .collect();
        assert_eq!(
            kmeans_minus_minus(&pts, 3, 2, 10, 1),
            kmeans_minus_minus(&pts, 3, 2, 10, 1)
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(kmeans_minus_minus(&[], 3, 1, 5, 1).is_empty());
        let one = vec![vec![1.0, 2.0]];
        let s = kmeans_minus_minus(&one, 3, 1, 5, 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0], 0.0);
    }
}
