//! Distance-to-neighbor baselines: kNN-Out (Ramaswamy et al., SIGMOD'00)
//! and ODIN (Hautamaki et al., ICPR'04). Both run on any metric through the
//! shared index crate, which is exactly how the paper positions them
//! ("distance-based detectors … may handle nondimensional data if adapted
//! to work with a suitable distance function and a metric tree").

use mccatch_index::{IndexBuilder, Neighbor, RangeIndex};
use mccatch_metric::Metric;

/// k nearest neighbors of every point, excluding the point itself.
/// The shared primitive for kNN-Out, ODIN, LOF and FastABOD.
pub fn knn_all<P, M, B>(points: &[P], metric: &M, builder: &B, k: usize) -> Vec<Vec<Neighbor>>
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    let index = builder.build_all_ref(points, metric);
    (0..points.len())
        .map(|i| {
            let mut nn = index.knn(&points[i], k + 1);
            // Drop the query itself (distance 0, same id). With duplicate
            // points the self entry is the one with the query's id.
            if let Some(pos) = nn.iter().position(|n| n.id == i as u32) {
                nn.remove(pos);
            } else {
                nn.pop();
            }
            nn.truncate(k);
            nn
        })
        .collect()
}

/// kNN-Out: the anomaly score of a point is the distance to its k-th
/// nearest neighbor.
pub fn knn_out_scores<P, M, B>(points: &[P], metric: &M, builder: &B, k: usize) -> Vec<f64>
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    knn_all(points, metric, builder, k)
        .into_iter()
        .map(|nn| nn.last().map_or(0.0, |n| n.dist))
        .collect()
}

/// ODIN: outliers have low in-degree in the kNN graph; we report
/// `1 / (1 + indegree)` so that, like every other method here, higher
/// scores mean more anomalous.
pub fn odin_scores<P, M, B>(points: &[P], metric: &M, builder: &B, k: usize) -> Vec<f64>
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    let knn = knn_all(points, metric, builder, k);
    let mut indegree = vec![0usize; points.len()];
    for nn in &knn {
        for n in nn {
            indegree[n.id as usize] += 1;
        }
    }
    indegree
        .into_iter()
        .map(|d| 1.0 / (1.0 + d as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::SlimTreeBuilder;
    use mccatch_metric::Euclidean;

    /// Blob of 50 points plus one far outlier.
    fn blob_with_outlier() -> Vec<Vec<f64>> {
        let mut pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64 * 0.2, (i / 10) as f64 * 0.2])
            .collect();
        pts.push(vec![50.0, 50.0]);
        pts
    }

    #[test]
    fn knn_all_excludes_self() {
        let pts = blob_with_outlier();
        let knn = knn_all(&pts, &Euclidean, &SlimTreeBuilder::default(), 3);
        for (i, nn) in knn.iter().enumerate() {
            assert_eq!(nn.len(), 3);
            assert!(nn.iter().all(|n| n.id != i as u32));
        }
    }

    #[test]
    fn knn_out_ranks_outlier_first() {
        let pts = blob_with_outlier();
        let scores = knn_out_scores(&pts, &Euclidean, &SlimTreeBuilder::default(), 5);
        let max_i = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_i, 50);
    }

    #[test]
    fn odin_ranks_outlier_first() {
        let pts = blob_with_outlier();
        let scores = odin_scores(&pts, &Euclidean, &SlimTreeBuilder::default(), 5);
        // The isolate is nobody's 5-NN... except possibly of itself-adjacent
        // boundary cases; it must get the (shared) maximum score.
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(scores[50], max);
    }

    #[test]
    fn duplicate_points_dont_break_self_exclusion() {
        let pts = vec![vec![0.0], vec![0.0], vec![0.0], vec![9.0]];
        let knn = knn_all(&pts, &Euclidean, &SlimTreeBuilder::default(), 2);
        for (i, nn) in knn.iter().enumerate() {
            assert!(nn.iter().all(|n| n.id != i as u32));
            assert_eq!(nn.len(), 2);
        }
    }
}
