//! Isolation Forest (Liu, Ting & Zhou, TKDD 2012) — the backbone of
//! several baselines (iForest itself, and our Gen2Out / D.MCA
//! reimplementations).
//!
//! Anomalies isolate quickly under random axis-parallel splits, so their
//! expected path length is short; the score is `2^(-E[h]/c(ψ))` where
//! `c(ψ)` normalizes by the average BST path length.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Average unsuccessful-search path length of a BST with `n` nodes: the
/// normalizer `c(n)` of the iForest paper.
pub fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let h = |i: f64| i.ln() + 0.577_215_664_901_532_9;
    2.0 * h((n - 1) as f64) - 2.0 * (n - 1) as f64 / n as f64
}

#[derive(Debug)]
enum ITree {
    Leaf {
        size: usize,
    },
    Split {
        dim: usize,
        value: f64,
        left: Box<ITree>,
        right: Box<ITree>,
    },
}

impl ITree {
    fn build(
        points: &[Vec<f64>],
        ids: &mut [u32],
        depth: usize,
        max_depth: usize,
        rng: &mut StdRng,
    ) -> ITree {
        if ids.len() <= 1 || depth >= max_depth {
            return ITree::Leaf { size: ids.len() };
        }
        let dim_count = points[0].len();
        // Pick a random dimension with spread; give up after a few tries
        // (all-identical subsets become leaves).
        for _ in 0..8 {
            let dim = rng.random_range(0..dim_count);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &i in ids.iter() {
                let v = points[i as usize][dim];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi <= lo {
                continue;
            }
            let value = rng.random_range(lo..hi);
            let mid = itertools_partition(ids, |&i| points[i as usize][dim] <= value);
            if mid == 0 || mid == ids.len() {
                continue;
            }
            let (l, r) = ids.split_at_mut(mid);
            let left = Box::new(ITree::build(points, l, depth + 1, max_depth, rng));
            let right = Box::new(ITree::build(points, r, depth + 1, max_depth, rng));
            return ITree::Split {
                dim,
                value,
                left,
                right,
            };
        }
        ITree::Leaf { size: ids.len() }
    }

    fn path_length(&self, p: &[f64], depth: f64) -> f64 {
        match self {
            ITree::Leaf { size } => depth + c_factor(*size),
            ITree::Split {
                dim,
                value,
                left,
                right,
            } => {
                if p[*dim] <= *value {
                    left.path_length(p, depth + 1.0)
                } else {
                    right.path_length(p, depth + 1.0)
                }
            }
        }
    }
}

/// In-place stable-ish partition; returns the split point.
fn itertools_partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut i = 0;
    for j in 0..xs.len() {
        if pred(&xs[j]) {
            xs.swap(i, j);
            i += 1;
        }
    }
    i
}

/// An isolation forest; build once, score any points.
#[derive(Debug)]
pub struct IsolationForest {
    trees: Vec<ITree>,
    psi: usize,
}

impl IsolationForest {
    /// Fits `n_trees` trees on subsamples of size `psi` (Tab. II grids:
    /// `t ∈ {2..128}`, `ψ ∈ {2..min(1024, 0.3n)}`; the classic defaults are
    /// `t = 100`, `ψ = 256`). Deterministic given `seed`.
    pub fn fit(points: &[Vec<f64>], n_trees: usize, psi: usize, seed: u64) -> Self {
        assert!(!points.is_empty(), "cannot fit a forest on no data");
        let psi = psi.clamp(2, points.len());
        let max_depth = (psi as f64).log2().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = (0..n_trees)
            .map(|_| {
                // Subsample without replacement (partial Fisher-Yates).
                let mut ids: Vec<u32> = (0..points.len() as u32).collect();
                for i in 0..psi {
                    let j = rng.random_range(i..ids.len());
                    ids.swap(i, j);
                }
                ids.truncate(psi);
                ITree::build(points, &mut ids, 0, max_depth, &mut rng)
            })
            .collect();
        Self { trees, psi }
    }

    /// Anomaly score of one point: `2^(-E[h]/c(ψ))`, in (0, 1); > 0.5 leans
    /// anomalous.
    pub fn score(&self, p: &[f64]) -> f64 {
        let mean_path = self
            .trees
            .iter()
            .map(|t| t.path_length(p, 0.0))
            .sum::<f64>()
            / self.trees.len() as f64;
        let c = c_factor(self.psi);
        if c <= 0.0 {
            return 0.5;
        }
        2f64.powf(-mean_path / c)
    }

    /// Scores for a whole dataset.
    pub fn score_all(&self, points: &[Vec<f64>]) -> Vec<f64> {
        points.iter().map(|p| self.score(p)).collect()
    }
}

/// One-call convenience used by the harness.
pub fn iforest_scores(points: &[Vec<f64>], n_trees: usize, psi: usize, seed: u64) -> Vec<f64> {
    if points.is_empty() {
        return Vec::new();
    }
    IsolationForest::fit(points, n_trees, psi, seed).score_all(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_factor_known_values() {
        assert_eq!(c_factor(1), 0.0);
        // c(2) = 2*H(1) - 2*1/2 = 2*0.5772... - 1 ≈ 0.1544.
        assert!((c_factor(2) - 0.15443).abs() < 1e-4);
        assert!(c_factor(256) > c_factor(64));
    }

    #[test]
    fn isolate_scores_above_inliers() {
        let mut pts: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 * 0.1, (i / 20) as f64 * 0.1])
            .collect();
        pts.push(vec![50.0, 50.0]);
        let s = iforest_scores(&pts, 100, 64, 42);
        let max_inlier = s[..200].iter().cloned().fold(f64::MIN, f64::max);
        assert!(s[200] > max_inlier, "{} vs {max_inlier}", s[200]);
        assert!(s[200] > 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, (i * 7 % 13) as f64])
            .collect();
        assert_eq!(
            iforest_scores(&pts, 20, 32, 7),
            iforest_scores(&pts, 20, 32, 7)
        );
        assert_ne!(
            iforest_scores(&pts, 20, 32, 7),
            iforest_scores(&pts, 20, 32, 8)
        );
    }

    #[test]
    fn scores_bounded() {
        let pts: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let s = iforest_scores(&pts, 10, 16, 1);
        assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn identical_points_do_not_panic() {
        let pts = vec![vec![3.0, 3.0]; 30];
        let s = iforest_scores(&pts, 10, 8, 1);
        assert!(s.iter().all(|x| x.is_finite()));
    }
}
