//! OPTICS (Ankerst et al., SIGMOD'99) used as an outlier detector.
//!
//! OPTICS orders points by density reachability; a point's final
//! *reachability distance* is small inside clusters and large for points
//! no cluster wants — using it directly as an anomaly score is the classic
//! "outliers as a byproduct" reading the paper assigns to OPTICS in Tab. I
//! (and, like DBSCAN and friends, it groups nothing and scores no
//! microclusters, failing goals G2/G3).

use mccatch_index::{IndexBuilder, Neighbor, RangeIndex};
use mccatch_metric::Metric;

/// The OPTICS ordering result.
#[derive(Debug, Clone)]
pub struct OpticsResult {
    /// Visit order (a permutation of `0..n`).
    pub ordering: Vec<u32>,
    /// Reachability distance per point (`f64::INFINITY` for each
    /// expansion seed) — the reachability plot, indexed by point id.
    pub reachability: Vec<f64>,
    /// Core distance per point (`f64::INFINITY` if never a core point).
    pub core_distance: Vec<f64>,
}

/// Runs OPTICS with `eps` (use `f64::INFINITY` for the unbounded classic
/// form) and `min_pts`.
pub fn optics<P, M, B>(
    points: &[P],
    metric: &M,
    builder: &B,
    eps: f64,
    min_pts: usize,
) -> OpticsResult
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    let n = points.len();
    let index = builder.build_all_ref(points, metric);
    let mut reachability = vec![f64::INFINITY; n];
    let mut core_distance = vec![f64::INFINITY; n];
    let mut processed = vec![false; n];
    let mut ordering = Vec::with_capacity(n);
    // Seed list: (reachability, id) min-heap via sorted Vec scan — n is
    // moderate for a quadratic-class baseline, keep it simple and exact.
    let mut seeds: Vec<(f64, u32)> = Vec::new();
    let mut hits: Vec<u32> = Vec::new();

    let neighbors = |i: usize, hits: &mut Vec<u32>| {
        hits.clear();
        if eps.is_finite() {
            index.range_ids(&points[i], eps, hits);
        } else {
            hits.extend(0..n as u32);
        }
    };
    let core_dist = |i: usize| -> f64 {
        let nn: Vec<Neighbor> = index.knn(&points[i], min_pts);
        if nn.len() < min_pts {
            f64::INFINITY
        } else {
            let d = nn.last().expect("non-empty").dist;
            if d <= eps {
                d
            } else {
                f64::INFINITY
            }
        }
    };

    for start in 0..n {
        if processed[start] {
            continue;
        }
        processed[start] = true;
        ordering.push(start as u32);
        core_distance[start] = core_dist(start);
        seeds.clear();
        if core_distance[start].is_finite() {
            neighbors(start, &mut hits);
            update_seeds(
                points,
                metric,
                start,
                core_distance[start],
                &hits,
                &processed,
                &mut reachability,
                &mut seeds,
            );
        }
        while let Some(pos) = argmin(&seeds) {
            let (_, next) = seeds.swap_remove(pos);
            let next = next as usize;
            if processed[next] {
                continue;
            }
            processed[next] = true;
            ordering.push(next as u32);
            core_distance[next] = core_dist(next);
            if core_distance[next].is_finite() {
                neighbors(next, &mut hits);
                update_seeds(
                    points,
                    metric,
                    next,
                    core_distance[next],
                    &hits,
                    &processed,
                    &mut reachability,
                    &mut seeds,
                );
            }
        }
    }
    OpticsResult {
        ordering,
        reachability,
        core_distance,
    }
}

fn argmin(seeds: &[(f64, u32)]) -> Option<usize> {
    seeds
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
        .map(|(i, _)| i)
}

#[allow(clippy::too_many_arguments)]
fn update_seeds<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    center: usize,
    center_core: f64,
    hits: &[u32],
    processed: &[bool],
    reachability: &mut [f64],
    seeds: &mut Vec<(f64, u32)>,
) {
    for &o in hits {
        let o = o as usize;
        if processed[o] {
            continue;
        }
        let reach = center_core.max(metric.distance(&points[center], &points[o]));
        if reach < reachability[o] {
            reachability[o] = reach;
            // Replace or insert the seed entry.
            if let Some(entry) = seeds.iter_mut().find(|(_, id)| *id == o as u32) {
                entry.0 = reach;
            } else {
                seeds.push((reach, o as u32));
            }
        }
    }
}

/// OPTICS-as-detector: the anomaly score is
/// `min(reachability, core distance)` — raw reachability alone spikes on
/// the *first* point of every cluster visited (the cross-cluster jump of
/// the reachability plot), and taking the min with the point's own core
/// distance removes exactly those false spikes while leaving true
/// low-density points high.
pub fn optics_scores<P, M, B>(
    points: &[P],
    metric: &M,
    builder: &B,
    eps: f64,
    min_pts: usize,
) -> Vec<f64>
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    let res = optics(points, metric, builder, eps, min_pts);
    res.reachability
        .iter()
        .zip(&res.core_distance)
        .map(|(&r, &c)| {
            let s = r.min(c);
            if s.is_finite() {
                s
            } else {
                // Neither reachable nor core: isolated at this eps.
                eps.min(f64::MAX)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::SlimTreeBuilder;
    use mccatch_metric::Euclidean;

    fn blobs_and_outlier() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..40 {
            pts.push(vec![(i % 8) as f64 * 0.2, (i / 8) as f64 * 0.2]);
        }
        for i in 0..40 {
            pts.push(vec![20.0 + (i % 8) as f64 * 0.2, (i / 8) as f64 * 0.2]);
        }
        pts.push(vec![10.0, 10.0]);
        pts
    }

    #[test]
    fn ordering_is_a_permutation() {
        let pts = blobs_and_outlier();
        let res = optics(
            &pts,
            &Euclidean,
            &SlimTreeBuilder::default(),
            f64::INFINITY,
            5,
        );
        let mut seen = res.ordering.clone();
        seen.sort_unstable();
        let want: Vec<u32> = (0..pts.len() as u32).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn outlier_has_largest_reachability_score() {
        let pts = blobs_and_outlier();
        let s = optics_scores(
            &pts,
            &Euclidean,
            &SlimTreeBuilder::default(),
            f64::INFINITY,
            5,
        );
        let max_in = s[..80].iter().cloned().fold(f64::MIN, f64::max);
        assert!(s[80] > max_in, "{} vs {max_in}", s[80]);
        assert!(s.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn cluster_members_have_small_reachability() {
        let pts = blobs_and_outlier();
        let res = optics(
            &pts,
            &Euclidean,
            &SlimTreeBuilder::default(),
            f64::INFINITY,
            5,
        );
        // Interior points reach their cluster within the grid pitch ~0.28.
        let finite: Vec<f64> = res.reachability[..80]
            .iter()
            .cloned()
            .filter(|r| r.is_finite())
            .collect();
        let median = {
            let mut f = finite.clone();
            f.sort_by(f64::total_cmp);
            f[f.len() / 2]
        };
        assert!(median <= 0.3, "median reachability {median}");
    }

    #[test]
    fn bounded_eps_marks_isolates() {
        let pts = blobs_and_outlier();
        let s = optics_scores(&pts, &Euclidean, &SlimTreeBuilder::default(), 1.0, 5);
        // With eps = 1 the far point is never reached: score = eps.
        assert_eq!(s[80], 1.0);
    }

    #[test]
    fn deterministic() {
        let pts = blobs_and_outlier();
        let a = optics(
            &pts,
            &Euclidean,
            &SlimTreeBuilder::default(),
            f64::INFINITY,
            5,
        );
        let b = optics(
            &pts,
            &Euclidean,
            &SlimTreeBuilder::default(),
            f64::INFINITY,
            5,
        );
        assert_eq!(a.ordering, b.ordering);
        assert_eq!(a.reachability, b.reachability);
    }
}
