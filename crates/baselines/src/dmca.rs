//! D.MCA (Jiang, Cordeiro & Akoglu, ICDM 2022), simplified
//! reimplementation: outlier detection *with explicit micro-cluster
//! assignment*.
//!
//! D.MCA's key trick is an ensemble of isolation forests over *small*
//! subsamples: with tiny ψ, members of a microcluster stop shielding one
//! another (few of them make it into any subsample), so clumped anomalies
//! get isolated early — the "anomaly hourglass" effect. Point scores are
//! averaged over the ensemble, and high scorers are then explicitly
//! assigned to microclusters by proximity. We keep exactly that recipe and
//! simplify the hourglass-based seeding and masking refinements
//! (documented in `DESIGN.md` §4). D.MCA assigns clusters but does not
//! score them — it misses the paper's goal G2 — so, like the original, the
//! API exposes point scores plus raw assignments.

use crate::iforest::IsolationForest;
use crate::unionfind_small::UnionFind;
use mccatch_index::{pair_join, IndexBuilder, Neighbor, RangeIndex};
use mccatch_metric::Euclidean;

/// D.MCA output: per-point scores and per-point microcluster assignment
/// (`None` = inlier).
#[derive(Debug, Clone)]
pub struct DmcaResult {
    /// Per-point anomaly scores (ensemble average).
    pub point_scores: Vec<f64>,
    /// Microcluster id per point, `None` for unflagged points.
    pub assignment: Vec<Option<u32>>,
    /// The microclusters as member lists, ascending ids.
    pub microclusters: Vec<Vec<u32>>,
}

/// Runs simplified D.MCA: an ensemble of forests with geometrically grown
/// subsample sizes `ψ ∈ {2, 4, 8, …, psi_max}` (Tab. II), then proximity
/// assignment of the top `p`-fraction of scorers.
pub fn dmca<B>(
    points: &[Vec<f64>],
    builder: &B,
    trees_per_forest: usize,
    psi_max: usize,
    flag_fraction: f64,
    seed: u64,
) -> DmcaResult
where
    B: IndexBuilder<Vec<f64>, Euclidean>,
{
    let n = points.len();
    if n == 0 {
        return DmcaResult {
            point_scores: Vec::new(),
            assignment: Vec::new(),
            microclusters: Vec::new(),
        };
    }
    // Ensemble over growing subsample sizes: small ψ exposes clumped
    // anomalies, large ψ refines scattered ones.
    let mut point_scores = vec![0.0f64; n];
    let mut n_forests = 0;
    let mut psi = 2usize;
    let mut forest_seed = seed;
    while psi <= psi_max.min(n) {
        let forest = IsolationForest::fit(points, trees_per_forest, psi, forest_seed);
        for (s, p) in point_scores.iter_mut().zip(points) {
            *s += forest.score(p);
        }
        n_forests += 1;
        psi *= 2;
        forest_seed = forest_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    }
    if n_forests > 0 {
        for s in point_scores.iter_mut() {
            *s /= n_forests as f64;
        }
    }
    // Flag the top fraction and assign explicit microclusters by linking
    // flagged points within the flagged set's median 1NN distance.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        point_scores[b as usize]
            .total_cmp(&point_scores[a as usize])
            .then(a.cmp(&b))
    });
    let flagged_len = ((n as f64 * flag_fraction).ceil() as usize).clamp(1, n);
    let mut flagged: Vec<u32> = order[..flagged_len].to_vec();
    flagged.sort_unstable();
    let index = builder.build_ref(points, flagged.clone(), &Euclidean);
    let mut nn1: Vec<f64> = flagged
        .iter()
        .map(|&i| {
            let nn: Vec<Neighbor> = index.knn(&points[i as usize], 2);
            nn.iter()
                .find(|x| x.id != i)
                .map_or(f64::INFINITY, |x| x.dist)
        })
        .collect();
    nn1.sort_by(f64::total_cmp);
    let median = nn1.get(nn1.len() / 2).copied().unwrap_or(0.0);
    let mut assignment: Vec<Option<u32>> = vec![None; n];
    let mut microclusters = Vec::new();
    if median.is_finite() && median > 0.0 && flagged.len() >= 2 {
        let pairs = pair_join(&index, points, &flagged, median * 2.0);
        let mut uf = UnionFind::new(flagged.len());
        for (u, v) in pairs {
            let pu = flagged.binary_search(&u).expect("flagged") as u32;
            let pv = flagged.binary_search(&v).expect("flagged") as u32;
            uf.union(pu, pv);
        }
        for comp in uf.components() {
            let members: Vec<u32> = comp.into_iter().map(|p| flagged[p as usize]).collect();
            let mc_id = microclusters.len() as u32;
            for &m in &members {
                assignment[m as usize] = Some(mc_id);
            }
            microclusters.push(members);
        }
    } else {
        for &i in &flagged {
            assignment[i as usize] = Some(microclusters.len() as u32);
            microclusters.push(vec![i]);
        }
    }
    DmcaResult {
        point_scores,
        assignment,
        microclusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::KdTreeBuilder;

    fn scenario() -> Vec<Vec<f64>> {
        let mut pts: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i % 20) as f64 * 0.1, (i / 20) as f64 * 0.1])
            .collect();
        for k in 0..8 {
            pts.push(vec![
                25.0 + 0.05 * (k % 4) as f64,
                25.0 + 0.05 * (k / 4) as f64,
            ]);
        }
        pts.push(vec![-30.0, 10.0]);
        pts
    }

    #[test]
    fn microcluster_points_score_high_with_small_psi_ensemble() {
        let pts = scenario();
        let r = dmca(&pts, &KdTreeBuilder::default(), 32, 64, 0.03, 11);
        let max_inlier = r.point_scores[..400]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        let min_mc = r.point_scores[400..408]
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        assert!(min_mc > max_inlier, "mc {min_mc} vs inlier {max_inlier}");
    }

    #[test]
    fn assigns_explicit_microclusters() {
        let pts = scenario();
        let r = dmca(&pts, &KdTreeBuilder::default(), 32, 64, 0.03, 11);
        // The 8 planted points should land in one assigned microcluster.
        let mc_of_first = r.assignment[400];
        assert!(mc_of_first.is_some());
        let members = &r.microclusters[mc_of_first.unwrap() as usize];
        assert!(members.len() >= 6, "fragmented: {members:?}");
        assert!(members.iter().all(|&m| (400..408).contains(&m)));
    }

    #[test]
    fn deterministic() {
        let pts = scenario();
        let a = dmca(&pts, &KdTreeBuilder::default(), 16, 32, 0.05, 5);
        let b = dmca(&pts, &KdTreeBuilder::default(), 16, 32, 0.05, 5);
        assert_eq!(a.point_scores, b.point_scores);
        assert_eq!(a.microclusters, b.microclusters);
    }

    #[test]
    fn empty_input() {
        let r = dmca(&[], &KdTreeBuilder::default(), 8, 8, 0.1, 1);
        assert!(r.point_scores.is_empty());
    }
}
