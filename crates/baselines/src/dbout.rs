//! DB-Out — distance-based outliers (Knorr & Ng, VLDB'98).
//!
//! A point is a DB(π, r)-outlier when fewer than a π-fraction of the data
//! lies within distance `r`. We return the continuous version (fraction of
//! points *not* within `r`) so the detector yields a ranking like the
//! others; thresholding it at `1 − π` recovers the boolean definition.

use mccatch_index::{batch_range_count, IndexBuilder, RangeIndex};
use mccatch_metric::Metric;

/// DB-Out scores for neighborhood radius `r` (the paper tunes
/// `r ∈ {0.05, 0.1, 0.25, 0.5} × diameter`, Tab. II).
pub fn db_out_scores<P, M, B>(points: &[P], metric: &M, builder: &B, radius: f64) -> Vec<f64>
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let index = builder.build_all_ref(points, metric);
    let queries: Vec<u32> = (0..n as u32).collect();
    let counts = batch_range_count(&index, points, &queries, radius, 1);
    counts
        .into_iter()
        .map(|c| 1.0 - c as f64 / n as f64)
        .collect()
}

/// The paper's radius grid for DB-Out/LOCI, relative to the dataset
/// diameter `l` (Tab. II).
pub fn radius_grid(diameter: f64) -> [f64; 4] {
    [
        diameter * 0.05,
        diameter * 0.1,
        diameter * 0.25,
        diameter * 0.5,
    ]
}

/// Convenience: the dataset diameter estimated from an index build, so the
/// harness can derive Tab. II radius grids without duplicating tree builds.
pub fn estimate_diameter<P, M, B>(points: &[P], metric: &M, builder: &B) -> f64
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    builder.build_all_ref(points, metric).diameter_estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::SlimTreeBuilder;
    use mccatch_metric::Euclidean;

    #[test]
    fn isolate_gets_top_score() {
        let mut pts: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.01]).collect();
        pts.push(vec![10.0]);
        let scores = db_out_scores(&pts, &Euclidean, &SlimTreeBuilder::default(), 1.0);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 60);
        // The isolate has only itself within r=1: score = 1 - 1/61.
        assert!((scores[60] - (1.0 - 1.0 / 61.0)).abs() < 1e-12);
    }

    #[test]
    fn dense_points_score_low() {
        let pts: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.01]).collect();
        let scores = db_out_scores(&pts, &Euclidean, &SlimTreeBuilder::default(), 1.0);
        // Everyone sees everyone: scores all 0.
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn radius_grid_fractions() {
        let g = radius_grid(100.0);
        assert_eq!(g, [5.0, 10.0, 25.0, 50.0]);
    }
}
