//! Robust-PCA stand-in for RDA (Zhou & Paffenroth, KDD 2017).
//!
//! RDA is a *robust deep autoencoder*: it splits the data into a part that
//! a low-dimensional autoencoder reconstructs well plus a sparse outlier
//! residual, and scores points by reconstruction error. On tabular data the
//! detection signal is the low-rank reconstruction error, which a linear
//! autoencoder — PCA — computes exactly. We therefore substitute a
//! deterministic robust PCA: fit principal components by power iteration,
//! trim the worst-reconstructed points, refit, and report the final
//! reconstruction error as the score. The substitution is documented in
//! `DESIGN.md` §4.

/// Scores = reconstruction error after robust PCA with `k` components and
/// `trim_rounds` refit rounds (each round drops the worst 5%).
pub fn rpca_scores(points: &[Vec<f64>], k: usize, trim_rounds: usize) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = points[0].len();
    let k = k.clamp(1, dim);
    let mut active: Vec<usize> = (0..n).collect();
    let mut components: Vec<Vec<f64>> = Vec::new();
    let mut mean = vec![0.0; dim];
    for round in 0..=trim_rounds {
        (mean, components) = fit_pca(points, &active, k);
        if round == trim_rounds {
            break;
        }
        // Trim the 5% worst-reconstructed active points and refit.
        let mut errs: Vec<(f64, usize)> = active
            .iter()
            .map(|&i| (reconstruction_error(&points[i], &mean, &components), i))
            .collect();
        errs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let keep = (active.len() as f64 * 0.95).ceil() as usize;
        active = errs
            .into_iter()
            .take(keep.max(k + 1))
            .map(|(_, i)| i)
            .collect();
        active.sort_unstable();
    }
    points
        .iter()
        .map(|p| reconstruction_error(p, &mean, &components))
        .collect()
}

/// Mean + top-`k` principal directions via deflated power iteration over
/// the covariance of `points[active]`. Deterministic start vectors.
fn fit_pca(points: &[Vec<f64>], active: &[usize], k: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let dim = points[0].len();
    let m = active.len().max(1) as f64;
    let mut mean = vec![0.0; dim];
    for &i in active {
        for d in 0..dim {
            mean[d] += points[i][d];
        }
    }
    for v in mean.iter_mut() {
        *v /= m;
    }
    // Covariance-times-vector products computed on the fly (no dim x dim
    // matrix): cov·v = (1/m) Σ (x-µ) <x-µ, v>.
    let cov_mul = |v: &[f64], comps: &[Vec<f64>]| -> Vec<f64> {
        let mut out = vec![0.0; dim];
        for &i in active {
            let x = &points[i];
            let mut dotp = 0.0;
            for d in 0..dim {
                dotp += (x[d] - mean[d]) * v[d];
            }
            for d in 0..dim {
                out[d] += (x[d] - mean[d]) * dotp;
            }
        }
        for o in out.iter_mut() {
            *o /= m;
        }
        // Deflate previously found components.
        for c in comps {
            let proj: f64 = out.iter().zip(c).map(|(a, b)| a * b).sum();
            for d in 0..dim {
                out[d] -= proj * c[d];
            }
        }
        out
    };
    let mut comps: Vec<Vec<f64>> = Vec::with_capacity(k);
    for ki in 0..k {
        // Deterministic start: unit vector along axis (ki mod dim) plus a
        // small spread so orthogonal starts don't stall.
        let mut v = vec![1e-3; dim];
        v[ki % dim] = 1.0;
        normalize(&mut v);
        for _ in 0..50 {
            let mut w = cov_mul(&v, &comps);
            if normalize(&mut w) < 1e-12 {
                break; // rank exhausted
            }
            v = w;
        }
        // Orthonormalize against previous components for safety.
        for c in &comps {
            let proj: f64 = v.iter().zip(c).map(|(a, b)| a * b).sum();
            for d in 0..dim {
                v[d] -= proj * c[d];
            }
        }
        if normalize(&mut v) < 1e-12 {
            break;
        }
        comps.push(v);
    }
    (mean, comps)
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

/// Distance from `p` to its projection on the affine PCA subspace.
fn reconstruction_error(p: &[f64], mean: &[f64], comps: &[Vec<f64>]) -> f64 {
    let dim = p.len();
    let centered: Vec<f64> = (0..dim).map(|d| p[d] - mean[d]).collect();
    let mut residual = centered.clone();
    for c in comps {
        let proj: f64 = centered.iter().zip(c).map(|(a, b)| a * b).sum();
        for d in 0..dim {
            residual[d] -= proj * c[d];
        }
    }
    residual.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plane_point_scores_highest() {
        // Inliers on the x-y plane in 3-d, one point far along z.
        let mut pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64, 0.01 * (i % 7) as f64])
            .collect();
        pts.push(vec![5.0, 5.0, 25.0]);
        let s = rpca_scores(&pts, 2, 2);
        let max_inlier = s[..100].iter().cloned().fold(f64::MIN, f64::max);
        assert!(s[100] > 10.0 * max_inlier, "{} vs {max_inlier}", s[100]);
    }

    #[test]
    fn perfect_plane_has_zero_error() {
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, 2.0 * i as f64, 0.0])
            .collect();
        let s = rpca_scores(&pts, 1, 0);
        // A line needs one component: errors ~ 0.
        assert!(
            s.iter().all(|&e| e < 1e-6),
            "max {:?}",
            s.iter().cloned().fold(f64::MIN, f64::max)
        );
    }

    #[test]
    fn trimming_resists_outlier_pull() {
        // A strong outlier tilts plain PCA; trimmed refits should keep the
        // inlier line's errors small.
        let mut pts: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, i as f64]).collect();
        pts.push(vec![0.0, 500.0]);
        let robust = rpca_scores(&pts, 1, 3);
        let max_inlier = robust[..100].iter().cloned().fold(f64::MIN, f64::max);
        assert!(robust[100] > 5.0 * max_inlier);
    }

    #[test]
    fn deterministic() {
        let pts: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        assert_eq!(rpca_scores(&pts, 2, 1), rpca_scores(&pts, 2, 1));
    }
}
