//! Minimal union–find used by the group-forming baselines (Gen2Out,
//! D.MCA). Kept local so the baselines crate stays independent of
//! `mccatch-core`.

/// Disjoint-set union with path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets containing `a` and `b`.
    pub fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }

    /// Components sorted by smallest member; members ascending.
    pub fn components(&mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len();
        let mut pairs: Vec<(u32, u32)> = (0..n as u32).map(|x| (self.find(x), x)).collect();
        pairs.sort_unstable();
        let mut out: Vec<Vec<u32>> = Vec::new();
        let mut last = u32::MAX;
        for (root, x) in pairs {
            if root != last {
                out.push(Vec::new());
                last = root;
            }
            out.last_mut().expect("pushed").push(x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_and_components() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 3);
        uf.union(3, 4);
        let comps = uf.components();
        assert_eq!(comps, vec![vec![0, 3, 4], vec![1], vec![2]]);
    }
}
