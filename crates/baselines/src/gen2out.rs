//! Gen2Out (Lee, Shekhar, Faloutsos et al., IEEE BigData 2021), simplified
//! reimplementation.
//!
//! Gen2Out is the one competitor that, like MCCATCH, scores *group*
//! anomalies: it derives point scores from isolation-forest depths and then
//! detects group anomalies among the high-scoring fringe. This
//! reimplementation keeps that architecture — iForest point scores; fringe
//! extraction; grouping of fringe points by proximity; a group score that
//! grows with the group's isolation — while simplifying the X-ray-plot
//! apex-extraction machinery of the original (documented in `DESIGN.md`
//! §4). Tab. V's qualitative finding is preserved: the depth-based scores
//! track isolation but are blind to cluster shape, so non-convex inlier
//! shapes degrade it.

use crate::iforest::IsolationForest;
use mccatch_index::{pair_join, IndexBuilder, Neighbor, RangeIndex};
use mccatch_metric::Euclidean;

/// A detected group anomaly with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct Gen2OutGroup {
    /// Member ids, ascending.
    pub members: Vec<u32>,
    /// Group anomaly score (higher = more anomalous).
    pub score: f64,
}

/// Full Gen2Out output: point scores plus scored group anomalies.
#[derive(Debug, Clone)]
pub struct Gen2OutResult {
    /// Per-point anomaly scores (iForest depth based).
    pub point_scores: Vec<f64>,
    /// Group anomalies, sorted most anomalous first.
    pub groups: Vec<Gen2OutGroup>,
}

/// Runs simplified Gen2Out. `n_trees`/`psi` parameterize the forest
/// (Tab. II: `t ∈ {2..128}`; the original uses its own defaults),
/// `fringe_fraction` the share of top-scored points considered for
/// grouping (the original's "apex" extraction; 0.05 works well).
pub fn gen2out<B>(
    points: &[Vec<f64>],
    builder: &B,
    n_trees: usize,
    psi: usize,
    fringe_fraction: f64,
    seed: u64,
) -> Gen2OutResult
where
    B: IndexBuilder<Vec<f64>, Euclidean>,
{
    let n = points.len();
    if n == 0 {
        return Gen2OutResult {
            point_scores: Vec::new(),
            groups: Vec::new(),
        };
    }
    let forest = IsolationForest::fit(points, n_trees, psi, seed);
    let point_scores = forest.score_all(points);
    // Fringe: the top fraction by score (at least 1 point).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        point_scores[b as usize]
            .total_cmp(&point_scores[a as usize])
            .then(a.cmp(&b))
    });
    let fringe_len = ((n as f64 * fringe_fraction).ceil() as usize).clamp(1, n);
    let mut fringe: Vec<u32> = order[..fringe_len].to_vec();
    fringe.sort_unstable();
    // Group fringe points within the characteristic fringe scale: the
    // median 1NN distance within the fringe, times a slack factor.
    let index = builder.build_ref(points, fringe.clone(), &Euclidean);
    let mut nn1: Vec<f64> = fringe
        .iter()
        .map(|&i| {
            let nn: Vec<Neighbor> = index.knn(&points[i as usize], 2);
            nn.iter()
                .find(|x| x.id != i)
                .map_or(f64::INFINITY, |x| x.dist)
        })
        .collect();
    nn1.sort_by(f64::total_cmp);
    let eps = if fringe.len() >= 2 {
        let median = nn1[nn1.len() / 2];
        if median.is_finite() {
            median * 2.0
        } else {
            0.0
        }
    } else {
        0.0
    };
    let mut groups: Vec<Gen2OutGroup> = Vec::new();
    if eps > 0.0 {
        let pairs = pair_join(&index, points, &fringe, eps);
        let mut uf = crate::unionfind_small::UnionFind::new(fringe.len());
        for (u, v) in pairs {
            let pu = fringe.binary_search(&u).expect("fringe member") as u32;
            let pv = fringe.binary_search(&v).expect("fringe member") as u32;
            uf.union(pu, pv);
        }
        for comp in uf.components() {
            let members: Vec<u32> = comp.into_iter().map(|p| fringe[p as usize]).collect();
            // Group score: mean member score, slightly discounting very
            // large groups (echoing the original's size-normalized area).
            let mean = members
                .iter()
                .map(|&i| point_scores[i as usize])
                .sum::<f64>()
                / members.len() as f64;
            let score = mean / (1.0 + (members.len() as f64).ln() / 10.0);
            groups.push(Gen2OutGroup { members, score });
        }
    } else {
        groups.extend(fringe.iter().map(|&i| Gen2OutGroup {
            members: vec![i],
            score: point_scores[i as usize],
        }));
    }
    groups.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.members[0].cmp(&b.members[0]))
    });
    Gen2OutResult {
        point_scores,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::KdTreeBuilder;

    fn blob_plus_mc_and_isolate() -> Vec<Vec<f64>> {
        let mut pts: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i % 20) as f64 * 0.1, (i / 20) as f64 * 0.1])
            .collect();
        for k in 0..6 {
            pts.push(vec![30.0 + 0.05 * k as f64, 30.0]);
        }
        pts.push(vec![-40.0, 10.0]);
        pts
    }

    #[test]
    fn flags_microcluster_and_isolate_points() {
        let pts = blob_plus_mc_and_isolate();
        let r = gen2out(&pts, &KdTreeBuilder::default(), 64, 128, 0.05, 7);
        let max_inlier = r.point_scores[..400]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        assert!(r.point_scores[406] > max_inlier, "isolate not top");
        // Some group must contain microcluster members.
        let has_mc_group = r
            .groups
            .iter()
            .any(|g| g.members.len() >= 3 && g.members.iter().all(|&m| (400..406).contains(&m)));
        assert!(has_mc_group, "groups: {:?}", r.groups);
    }

    #[test]
    fn deterministic() {
        let pts = blob_plus_mc_and_isolate();
        let a = gen2out(&pts, &KdTreeBuilder::default(), 32, 64, 0.05, 3);
        let b = gen2out(&pts, &KdTreeBuilder::default(), 32, 64, 0.05, 3);
        assert_eq!(a.point_scores, b.point_scores);
        assert_eq!(a.groups, b.groups);
    }

    #[test]
    fn empty_input() {
        let r = gen2out(&[], &KdTreeBuilder::default(), 8, 8, 0.05, 1);
        assert!(r.point_scores.is_empty());
        assert!(r.groups.is_empty());
    }
}
