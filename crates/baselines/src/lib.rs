//! Reimplementations of the 11 baselines MCCATCH is compared against
//! (Fig. 6, Tab. IV-VI), plus the shared machinery they need.
//!
//! | Paper baseline | Here | Notes |
//! |---|---|---|
//! | ABOD / FastABOD | [`abod_scores`] / [`fast_abod_scores`] | exact cubic / kNN variant |
//! | LOCI / ALOCI | [`loci_scores`] / [`aloci_scores`] | exact / grid approximation |
//! | DB-Out | [`db_out_scores`] | continuous DB(π, r) |
//! | kNN-Out | [`knn_out_scores`] | k-th NN distance |
//! | ODIN | [`odin_scores`] | inverse kNN-graph in-degree |
//! | LOF | [`lof_scores`] | local outlier factor |
//! | iForest | [`iforest_scores`] | isolation forest |
//! | Gen2Out | [`gen2out()`] | simplified; the only group-scoring competitor |
//! | D.MCA | [`dmca()`] | simplified; explicit microcluster assignment |
//! | RDA | [`rpca_scores`] | robust-PCA substitution (see DESIGN.md §4) |
//! | DBSCAN / KMeans-- | [`dbscan_scores`] / [`kmeans_minus_minus`] | clustering-based |
//! | OPTICS | [`optics_scores`] | reachability-plot detector (Tab. I) |
//! | SCiForest | [`sciforest_scores`] | split-selected oblique iForest (Tab. I) |
//!
//! Every detector returns per-point scores where *higher means more
//! anomalous*, so the evaluation harness can treat them uniformly. All
//! randomized methods take explicit seeds and are deterministic.
//!
//! The metric-capable baselines (LOF, kNN-Out, ODIN, DB-Out, LOCI, DBSCAN)
//! are generic over `Metric`/`IndexBuilder` and run on nondimensional data
//! "if adapted to work with a suitable distance function and a metric
//! tree" — exactly the paper's Tab. I footnote. The rest require
//! coordinates, which is why Tab. I marks them as failing goal G1.

pub mod abod;
pub mod dbout;
pub mod dbscan;
pub mod dmca;
pub mod gen2out;
pub mod iforest;
pub mod kmeansmm;
pub mod knn;
pub mod loci;
pub mod lof;
pub mod optics;
pub mod rpca;
pub mod sciforest;
pub(crate) mod unionfind_small;

pub use abod::{abod_scores, fast_abod_scores};
pub use dbout::{db_out_scores, estimate_diameter, radius_grid};
pub use dbscan::{dbscan, dbscan_scores, DbscanLabel};
pub use dmca::{dmca, DmcaResult};
pub use gen2out::{gen2out, Gen2OutGroup, Gen2OutResult};
pub use iforest::{c_factor, iforest_scores, IsolationForest};
pub use kmeansmm::kmeans_minus_minus;
pub use knn::{knn_all, knn_out_scores, odin_scores};
pub use loci::{aloci_scores, loci_scores};
pub use lof::lof_scores;
pub use optics::{optics, optics_scores, OpticsResult};
pub use rpca::rpca_scores;
pub use sciforest::sciforest_scores;
