//! ABOD / FastABOD — angle-based outlier detection (Kriegel et al.,
//! KDD 2008).
//!
//! Inliers see other points under widely varying angles; outliers, sitting
//! at the fringe, see everything under a narrow angle spectrum. The score
//! is the variance of distance-weighted angles over point pairs — exact
//! ABOD over all pairs (cubic; why Tab. I marks it unscalable), FastABOD
//! over the k nearest neighbors only. We return `1 / (1 + ABOF)` so higher
//! means more anomalous, consistent with the other detectors.

use crate::knn::knn_all;
use mccatch_index::IndexBuilder;
use mccatch_metric::Euclidean;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Variance of weighted angles of `p` against all pairs from `others`.
/// Difference vectors are materialized once into a flat scratch matrix —
/// the pair loop is the cubic hot path of exact ABOD and must stay
/// allocation-free.
fn abof(p: &[f64], others: &[&[f64]], scratch: &mut Vec<f64>) -> f64 {
    let dim = p.len();
    let m = others.len();
    scratch.clear();
    scratch.reserve(m * dim);
    let mut norms2 = Vec::with_capacity(m);
    for &o in others {
        for d in 0..dim {
            scratch.push(o[d] - p[d]);
        }
        let row = &scratch[scratch.len() - dim..];
        norms2.push(dot(row, row));
    }
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    let mut wsum = 0.0;
    for i in 0..m {
        if norms2[i] <= 0.0 {
            continue; // duplicate of p: angle undefined
        }
        let pa = &scratch[i * dim..(i + 1) * dim];
        for j in (i + 1)..m {
            if norms2[j] <= 0.0 {
                continue;
            }
            let pb = &scratch[j * dim..(j + 1) * dim];
            // Weighted angle term of the ABOD paper:
            // <pa, pb> / (|pa|^2 |pb|^2), weighted by 1/(|pa||pb|).
            let v = dot(pa, pb) / (norms2[i] * norms2[j]);
            let w = 1.0 / (norms2[i] * norms2[j]).sqrt();
            sum += w * v;
            sumsq += w * v * v;
            wsum += w;
        }
    }
    if wsum <= 0.0 {
        return 0.0;
    }
    let mean = sum / wsum;
    (sumsq / wsum - mean * mean).max(0.0)
}

/// Exact ABOD: all pairs for every point, `O(n³)` — only viable for small
/// datasets, exactly as the paper reports (LOCI/ABOD rows of Fig. 6 show
/// "excessive runtime" markers on the big sets).
pub fn abod_scores(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    let mut scratch = Vec::new();
    (0..n)
        .map(|i| {
            let others: Vec<&[f64]> = (0..n)
                .filter(|&j| j != i)
                .map(|j| points[j].as_slice())
                .collect();
            1.0 / (1.0 + abof(&points[i], &others, &mut scratch))
        })
        .collect()
}

/// FastABOD: the angle variance over the k nearest neighbors only
/// (`k ∈ {1, 5, 10}` in Tab. II; k ≥ 2 required for any pair to exist).
pub fn fast_abod_scores<B>(points: &[Vec<f64>], builder: &B, k: usize) -> Vec<f64>
where
    B: IndexBuilder<Vec<f64>, Euclidean>,
{
    let k = k.max(2);
    let knn = knn_all(points, &Euclidean, builder, k);
    let mut scratch = Vec::new();
    (0..points.len())
        .map(|i| {
            let others: Vec<&[f64]> = knn[i]
                .iter()
                .map(|n| points[n.id as usize].as_slice())
                .collect();
            1.0 / (1.0 + abof(&points[i], &others, &mut scratch))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::KdTreeBuilder;

    fn ring_with_outlier() -> Vec<Vec<f64>> {
        // Points on a circle (inliers see wide angles from the center region)
        // plus one far outside point.
        let mut pts: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64 / 40.0 * std::f64::consts::TAU;
                vec![t.cos(), t.sin()]
            })
            .collect();
        pts.push(vec![10.0, 0.0]);
        pts
    }

    #[test]
    fn abod_flags_far_point() {
        let pts = ring_with_outlier();
        let s = abod_scores(&pts);
        let max_inlier = s[..40].iter().cloned().fold(f64::MIN, f64::max);
        assert!(s[40] > max_inlier, "{} vs {max_inlier}", s[40]);
    }

    #[test]
    fn fast_abod_agrees_on_the_obvious_outlier() {
        let pts = ring_with_outlier();
        let s = fast_abod_scores(&pts, &KdTreeBuilder::default(), 10);
        let max_inlier = s[..40].iter().cloned().fold(f64::MIN, f64::max);
        assert!(s[40] > max_inlier);
    }

    #[test]
    fn duplicates_do_not_nan() {
        let pts = vec![vec![0.0, 0.0]; 5];
        let s = abod_scores(&pts);
        assert!(s.iter().all(|x| x.is_finite()));
    }
}
