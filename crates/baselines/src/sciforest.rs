//! SCiForest (Liu, Ting & Zhou, ECML-PKDD 2010): "On Detecting Clustered
//! Anomalies Using SCiForest" — reference \[6\] of the MCCATCH paper and the
//! source of its "HTTP and Annthyroid are known to have nonsingleton
//! microclusters" remark.
//!
//! SCiForest strengthens the isolation forest against *clustered*
//! anomalies by (i) splitting on random oblique hyperplanes over `q`
//! attributes instead of single attributes, and (ii) choosing, among `tau`
//! candidate hyperplanes per node, the one with the best SD-gain
//! (variance-reduction) — so splits track cluster boundaries instead of
//! cutting uniformly at random. Scores use the standard isolation-forest
//! formula. Per Tab. I it still "fails to group these points into an
//! entity with a score" (no goal G2/G3).

use crate::iforest::c_factor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug)]
enum SciNode {
    Leaf {
        size: usize,
    },
    Split {
        /// Sparse hyperplane: (attribute, coefficient) pairs.
        plane: Vec<(usize, f64)>,
        threshold: f64,
        left: Box<SciNode>,
        right: Box<SciNode>,
    },
}

fn project(plane: &[(usize, f64)], p: &[f64]) -> f64 {
    plane.iter().map(|&(d, w)| w * p[d]).sum()
}

fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64).sqrt()
}

impl SciNode {
    fn build(
        points: &[Vec<f64>],
        ids: &mut [u32],
        depth: usize,
        max_depth: usize,
        q: usize,
        tau: usize,
        rng: &mut StdRng,
    ) -> SciNode {
        if ids.len() <= 2 || depth >= max_depth {
            return SciNode::Leaf { size: ids.len() };
        }
        let dim = points[0].len();
        let q = q.min(dim).max(1);
        // tau candidate hyperplanes; keep the best SD-gain split.
        type Candidate = (Vec<(usize, f64)>, f64, f64); // plane, threshold, gain
        let mut best: Option<Candidate> = None;
        let mut proj = Vec::with_capacity(ids.len());
        for _ in 0..tau {
            // Random q distinct attributes with +-U(0.5, 1) weights,
            // normalized by the attribute spread on this node's data.
            let mut plane: Vec<(usize, f64)> = Vec::with_capacity(q);
            for _ in 0..q {
                let d = rng.random_range(0..dim);
                if plane.iter().any(|&(pd, _)| pd == d) {
                    continue;
                }
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &i in ids.iter() {
                    let v = points[i as usize][d];
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                let spread = (hi - lo).max(1e-12);
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                plane.push((d, sign * rng.random_range(0.5..1.0) / spread));
            }
            if plane.is_empty() {
                continue;
            }
            proj.clear();
            proj.extend(ids.iter().map(|&i| project(&plane, &points[i as usize])));
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in &proj {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi <= lo {
                continue;
            }
            let total_sd = std_dev(&proj);
            if total_sd <= 0.0 {
                continue;
            }
            // Candidate thresholds: a few random positions; keep best gain.
            for _ in 0..4 {
                let t = rng.random_range(lo..hi);
                let (mut l, mut r): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
                for &v in &proj {
                    if v <= t {
                        l.push(v);
                    } else {
                        r.push(v);
                    }
                }
                if l.is_empty() || r.is_empty() {
                    continue;
                }
                let gain = (total_sd - 0.5 * (std_dev(&l) + std_dev(&r))) / total_sd;
                if best.as_ref().is_none_or(|b| gain > b.2) {
                    best = Some((plane.clone(), t, gain));
                }
            }
        }
        let Some((plane, threshold, _)) = best else {
            return SciNode::Leaf { size: ids.len() };
        };
        let mid = partition(ids, |&i| project(&plane, &points[i as usize]) <= threshold);
        if mid == 0 || mid == ids.len() {
            return SciNode::Leaf { size: ids.len() };
        }
        let (l, r) = ids.split_at_mut(mid);
        SciNode::Split {
            threshold,
            left: Box::new(SciNode::build(points, l, depth + 1, max_depth, q, tau, rng)),
            right: Box::new(SciNode::build(points, r, depth + 1, max_depth, q, tau, rng)),
            plane,
        }
    }

    fn path_length(&self, p: &[f64], depth: f64) -> f64 {
        match self {
            SciNode::Leaf { size } => depth + c_factor(*size),
            SciNode::Split {
                plane,
                threshold,
                left,
                right,
            } => {
                if project(plane, p) <= *threshold {
                    left.path_length(p, depth + 1.0)
                } else {
                    right.path_length(p, depth + 1.0)
                }
            }
        }
    }
}

fn partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut i = 0;
    for j in 0..xs.len() {
        if pred(&xs[j]) {
            xs.swap(i, j);
            i += 1;
        }
    }
    i
}

/// SCiForest scores: `n_trees` split-selected oblique isolation trees on
/// subsamples of size `psi`, hyperplanes over `q` attributes, `tau`
/// candidates per node. Deterministic given `seed`; higher = more
/// anomalous.
pub fn sciforest_scores(
    points: &[Vec<f64>],
    n_trees: usize,
    psi: usize,
    q: usize,
    tau: usize,
    seed: u64,
) -> Vec<f64> {
    if points.is_empty() {
        return Vec::new();
    }
    let psi = psi.clamp(2, points.len());
    let max_depth = (psi as f64).log2().ceil() as usize + 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let trees: Vec<SciNode> = (0..n_trees)
        .map(|_| {
            let mut ids: Vec<u32> = (0..points.len() as u32).collect();
            for i in 0..psi {
                let j = rng.random_range(i..ids.len());
                ids.swap(i, j);
            }
            ids.truncate(psi);
            SciNode::build(points, &mut ids, 0, max_depth, q, tau, &mut rng)
        })
        .collect();
    let c = c_factor(psi);
    points
        .iter()
        .map(|p| {
            let mean_path =
                trees.iter().map(|t| t.path_length(p, 0.0)).sum::<f64>() / trees.len() as f64;
            if c <= 0.0 {
                0.5
            } else {
                2f64.powf(-mean_path / c)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_with_anomaly_cluster() -> Vec<Vec<f64>> {
        let mut pts: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 20) as f64 * 0.1, (i / 20) as f64 * 0.1])
            .collect();
        // A clustered anomaly: 6 points far away, tightly grouped.
        for k in 0..6 {
            pts.push(vec![15.0 + 0.02 * k as f64, 15.0]);
        }
        pts
    }

    #[test]
    fn clustered_anomalies_score_above_inliers() {
        let pts = blob_with_anomaly_cluster();
        let s = sciforest_scores(&pts, 60, 128, 2, 4, 7);
        let max_inlier = s[..300].iter().cloned().fold(f64::MIN, f64::max);
        let min_anomaly = s[300..].iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            min_anomaly > max_inlier,
            "anomaly {min_anomaly} vs inlier {max_inlier}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blob_with_anomaly_cluster();
        assert_eq!(
            sciforest_scores(&pts, 20, 64, 2, 3, 5),
            sciforest_scores(&pts, 20, 64, 2, 3, 5)
        );
        assert_ne!(
            sciforest_scores(&pts, 20, 64, 2, 3, 5),
            sciforest_scores(&pts, 20, 64, 2, 3, 6)
        );
    }

    #[test]
    fn scores_bounded_and_finite() {
        let pts = blob_with_anomaly_cluster();
        let s = sciforest_scores(&pts, 10, 32, 2, 2, 1);
        assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(sciforest_scores(&[], 10, 32, 2, 2, 1).is_empty());
        let same = vec![vec![1.0, 1.0]; 20];
        let s = sciforest_scores(&same, 10, 8, 2, 2, 1);
        assert!(s.iter().all(|x| x.is_finite()));
    }
}
