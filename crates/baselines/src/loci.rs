//! LOCI — Local Correlation Integral (Papadimitriou et al., ICDE 2003) —
//! and a grid-based aLOCI-style approximation.
//!
//! LOCI flags a point when its α-neighborhood count deviates from the
//! average α-neighborhood count of its r-neighbors by more than
//! `k_σ` standard deviations (MDEF / σ_MDEF). We report
//! `max_r MDEF/σ_MDEF` as a continuous score. Exact LOCI is quadratic —
//! which is why Tab. I marks it not-scalable; we keep that fidelity but
//! let the caller bound the radius grid.

use mccatch_index::{IndexBuilder, RangeIndex};
use mccatch_metric::Metric;

/// LOCI scores over the radius grid `radii` with locality ratio `alpha`
/// (the paper uses α = 0.5, n_min = 20; Tab. II).
pub fn loci_scores<P, M, B>(
    points: &[P],
    metric: &M,
    builder: &B,
    radii: &[f64],
    alpha: f64,
    n_min: usize,
) -> Vec<f64>
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let index = builder.build_all_ref(points, metric);
    let mut scores = vec![0.0f64; n];
    let mut sampling = Vec::new();
    for &r in radii {
        // Counting neighborhood counts at alpha*r for every point once.
        let alpha_counts: Vec<f64> = (0..n)
            .map(|i| index.range_count(&points[i], alpha * r) as f64)
            .collect();
        for i in 0..n {
            sampling.clear();
            index.range_ids(&points[i], r, &mut sampling);
            if sampling.len() < n_min {
                continue; // too few samples for a stable deviation estimate
            }
            let mean = sampling
                .iter()
                .map(|&j| alpha_counts[j as usize])
                .sum::<f64>()
                / sampling.len() as f64;
            if mean <= 0.0 {
                continue;
            }
            let var = sampling
                .iter()
                .map(|&j| {
                    let d = alpha_counts[j as usize] - mean;
                    d * d
                })
                .sum::<f64>()
                / sampling.len() as f64;
            let mdef = 1.0 - alpha_counts[i] / mean;
            let sigma_mdef = var.sqrt() / mean;
            if sigma_mdef > 0.0 {
                scores[i] = scores[i].max(mdef / sigma_mdef);
            }
        }
    }
    scores
}

/// aLOCI-style approximation for vector data: per-level uniform grids
/// replace range counts. Coarser and faster than exact LOCI; requires
/// coordinates (which is why Tab. I marks ALOCI as failing the General
/// Input goal).
pub fn aloci_scores(points: &[Vec<f64>], levels: usize, n_min: usize) -> Vec<f64> {
    use std::collections::HashMap;
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = points[0].len();
    // Bounding box.
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for p in points {
        for d in 0..dim {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let side0 = (0..dim)
        .map(|d| hi[d] - lo[d])
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut scores = vec![0.0f64; n];
    for g in 1..=levels {
        let side = side0 / (1u64 << g) as f64;
        // Cell key per point; counts per cell; parent cell aggregates.
        let key = |p: &[f64]| -> Vec<i64> {
            (0..dim)
                .map(|d| ((p[d] - lo[d]) / side).floor() as i64)
                .collect()
        };
        let mut cell_counts: HashMap<Vec<i64>, usize> = HashMap::new();
        for p in points {
            *cell_counts.entry(key(p)).or_insert(0) += 1;
        }
        // Parent cells (one level coarser) act as the sampling neighborhood.
        let mut parent_stats: HashMap<Vec<i64>, (f64, f64, f64)> = HashMap::new(); // (sum, sumsq, n)
        for (cell, &c) in &cell_counts {
            let parent: Vec<i64> = cell.iter().map(|&x| x >> 1).collect();
            let e = parent_stats.entry(parent).or_insert((0.0, 0.0, 0.0));
            e.0 += (c * c) as f64; // point-weighted sum of cell counts
            e.1 += (c * c * c) as f64;
            e.2 += c as f64;
        }
        for (i, p) in points.iter().enumerate() {
            let cell = key(p);
            let c = cell_counts[&cell] as f64;
            let parent: Vec<i64> = cell.iter().map(|&x| x >> 1).collect();
            let (sum, sumsq, total) = parent_stats[&parent];
            if total < n_min as f64 {
                continue;
            }
            let mean = sum / total;
            let var = (sumsq / total - mean * mean).max(0.0);
            if mean <= 0.0 {
                continue;
            }
            let mdef = 1.0 - c / mean;
            let sigma = var.sqrt() / mean;
            if sigma > 0.0 {
                scores[i] = scores[i].max(mdef / sigma);
            }
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::SlimTreeBuilder;
    use mccatch_metric::Euclidean;

    fn blob_with_outlier() -> Vec<Vec<f64>> {
        let mut pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1])
            .collect();
        pts.push(vec![8.0, 8.0]);
        pts
    }

    #[test]
    fn loci_flags_the_isolate() {
        let pts = blob_with_outlier();
        let radii = [2.0, 5.0, 12.0];
        let s = loci_scores(
            &pts,
            &Euclidean,
            &SlimTreeBuilder::default(),
            &radii,
            0.5,
            20,
        );
        let max_inlier = s[..100].iter().cloned().fold(f64::MIN, f64::max);
        assert!(s[100] > max_inlier, "outlier {} vs {max_inlier}", s[100]);
    }

    #[test]
    fn loci_empty_input() {
        let pts: Vec<Vec<f64>> = vec![];
        assert!(loci_scores(
            &pts,
            &Euclidean,
            &SlimTreeBuilder::default(),
            &[1.0],
            0.5,
            5
        )
        .is_empty());
    }

    #[test]
    fn aloci_flags_the_isolate() {
        let pts = blob_with_outlier();
        let s = aloci_scores(&pts, 4, 10);
        let max_inlier = s[..100].iter().cloned().fold(f64::MIN, f64::max);
        assert!(s[100] >= max_inlier, "outlier {} vs {max_inlier}", s[100]);
    }

    #[test]
    fn aloci_uniform_data_scores_are_low() {
        let pts: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i % 20) as f64, (i / 20) as f64])
            .collect();
        let s = aloci_scores(&pts, 3, 10);
        // No strong anomalies on a regular grid.
        assert!(
            s.iter().all(|&x| x < 3.5),
            "max {}",
            s.iter().cloned().fold(f64::MIN, f64::max)
        );
    }
}
