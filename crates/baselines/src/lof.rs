//! LOF — Local Outlier Factor (Breunig et al., SIGMOD 2000).
//!
//! The canonical density-based detector: a point's score is the average
//! ratio between its neighbors' local reachability density and its own.
//! Scores near 1 are inliers; larger means more outlying.

use crate::knn::knn_all;
use mccatch_index::IndexBuilder;
use mccatch_metric::Metric;

/// LOF scores with neighborhood size `k` (the paper tunes `k ∈ {1, 5, 10}`,
/// Tab. II).
pub fn lof_scores<P, M, B>(points: &[P], metric: &M, builder: &B, k: usize) -> Vec<f64>
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let knn = knn_all(points, metric, builder, k);
    // k-distance of each point = distance to its k-th neighbor.
    let k_dist: Vec<f64> = knn
        .iter()
        .map(|nn| nn.last().map_or(0.0, |x| x.dist))
        .collect();
    // Local reachability density: 1 / mean reach-dist to the neighbors.
    let lrd: Vec<f64> = knn
        .iter()
        .map(|nn| {
            if nn.is_empty() {
                return 0.0;
            }
            let mean_reach = nn
                .iter()
                .map(|x| x.dist.max(k_dist[x.id as usize]))
                .sum::<f64>()
                / nn.len() as f64;
            if mean_reach <= 0.0 {
                // Duplicate-heavy neighborhoods: infinite density; use a
                // large finite stand-in so ratios stay meaningful.
                f64::MAX.sqrt()
            } else {
                1.0 / mean_reach
            }
        })
        .collect();
    knn.iter()
        .enumerate()
        .map(|(i, nn)| {
            if nn.is_empty() || lrd[i] <= 0.0 {
                return 1.0;
            }
            nn.iter().map(|x| lrd[x.id as usize]).sum::<f64>() / (nn.len() as f64 * lrd[i])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::SlimTreeBuilder;
    use mccatch_metric::Euclidean;

    #[test]
    fn uniform_grid_scores_near_one() {
        let pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        let scores = lof_scores(&pts, &Euclidean, &SlimTreeBuilder::default(), 5);
        // Interior points of a regular grid have LOF ~ 1.
        let interior = 4 * 10 + 4; // (4, 4)
        assert!((scores[interior] - 1.0).abs() < 0.1, "{}", scores[interior]);
    }

    #[test]
    fn isolate_scores_much_higher() {
        let mut pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1])
            .collect();
        pts.push(vec![20.0, 20.0]);
        let scores = lof_scores(&pts, &Euclidean, &SlimTreeBuilder::default(), 5);
        let max_inlier = scores[..100].iter().cloned().fold(f64::MIN, f64::max);
        assert!(scores[100] > 3.0 * max_inlier);
    }

    #[test]
    fn duplicates_do_not_panic_or_nan() {
        let pts = vec![vec![1.0]; 20];
        let scores = lof_scores(&pts, &Euclidean, &SlimTreeBuilder::default(), 3);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn lof_famously_beats_global_knn_on_mixed_densities() {
        // Dense blob + sparse blob + a point just outside the dense blob:
        // locally outlying although globally its kNN distance is small.
        let mut pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64 * 0.05, (i / 10) as f64 * 0.05])
            .collect();
        for i in 0..50 {
            pts.push(vec![100.0 + (i % 10) as f64 * 2.0, (i / 10) as f64 * 2.0]);
        }
        pts.push(vec![1.5, 1.5]); // local outlier near dense blob
        let scores = lof_scores(&pts, &Euclidean, &SlimTreeBuilder::default(), 5);
        let max_sparse = scores[50..100].iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            scores[100] > max_sparse,
            "local outlier {} vs sparse inliers {max_sparse}",
            scores[100]
        );
    }
}
