//! DBSCAN (Ester et al., KDD'96) used as an outlier detector: noise points
//! are outliers. The paper lists DBSCAN among clustering methods that
//! "detect outliers as a byproduct" but "fail to group these points into
//! an entity with a score" (it misses goal G2) — we reproduce exactly that
//! behaviour: a binary-ish score with a mild density refinement so that
//! rankings are possible at all.

use mccatch_index::{IndexBuilder, RangeIndex};
use mccatch_metric::Metric;

/// Cluster assignment produced by DBSCAN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbscanLabel {
    /// Member of cluster `id`.
    Cluster(u32),
    /// Noise (outlier).
    Noise,
}

/// Full DBSCAN clustering.
pub fn dbscan<P, M, B>(
    points: &[P],
    metric: &M,
    builder: &B,
    eps: f64,
    min_pts: usize,
) -> Vec<DbscanLabel>
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    let n = points.len();
    let index = builder.build_all_ref(points, metric);
    let mut labels: Vec<Option<DbscanLabel>> = vec![None; n];
    let mut cluster = 0u32;
    let mut neigh = Vec::new();
    let mut seed_list: Vec<u32> = Vec::new();
    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        neigh.clear();
        index.range_ids(&points[i], eps, &mut neigh);
        if neigh.len() < min_pts {
            labels[i] = Some(DbscanLabel::Noise);
            continue;
        }
        labels[i] = Some(DbscanLabel::Cluster(cluster));
        seed_list.clear();
        seed_list.extend(neigh.iter().copied().filter(|&j| j as usize != i));
        let mut cursor = 0;
        while cursor < seed_list.len() {
            let j = seed_list[cursor] as usize;
            cursor += 1;
            match &labels[j] {
                Some(DbscanLabel::Noise) => {
                    labels[j] = Some(DbscanLabel::Cluster(cluster)); // border point
                    continue;
                }
                Some(DbscanLabel::Cluster(_)) => continue,
                None => {}
            }
            labels[j] = Some(DbscanLabel::Cluster(cluster));
            neigh.clear();
            index.range_ids(&points[j], eps, &mut neigh);
            if neigh.len() >= min_pts {
                seed_list.extend(neigh.iter().copied());
            }
        }
        cluster += 1;
    }
    labels.into_iter().map(|l| l.expect("assigned")).collect()
}

/// DBSCAN-as-detector: noise points score `1 + (eps-neighbor deficit)`,
/// clustered points score by their local sparsity in `[0, 1)`. Ranks noise
/// above all cluster members, with density breaking ties — the strongest
/// reading of "outliers as a byproduct".
pub fn dbscan_scores<P, M, B>(
    points: &[P],
    metric: &M,
    builder: &B,
    eps: f64,
    min_pts: usize,
) -> Vec<f64>
where
    P: Sync + Clone,
    M: Metric<P> + Clone,
    B: IndexBuilder<P, M>,
{
    let labels = dbscan(points, metric, builder, eps, min_pts);
    let index = builder.build_all_ref(points, metric);
    points
        .iter()
        .zip(&labels)
        .map(|(p, l)| {
            let c = index.range_count(p, eps) as f64;
            let sparsity = 1.0 / (1.0 + c);
            match l {
                DbscanLabel::Noise => 1.0 + sparsity,
                DbscanLabel::Cluster(_) => sparsity,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccatch_index::SlimTreeBuilder;
    use mccatch_metric::Euclidean;

    fn two_blobs_and_noise() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..30 {
            pts.push(vec![(i % 6) as f64 * 0.2, (i / 6) as f64 * 0.2]);
        }
        for i in 0..30 {
            pts.push(vec![10.0 + (i % 6) as f64 * 0.2, (i / 6) as f64 * 0.2]);
        }
        pts.push(vec![5.0, 5.0]); // noise
        pts
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let pts = two_blobs_and_noise();
        let labels = dbscan(&pts, &Euclidean, &SlimTreeBuilder::default(), 0.5, 4);
        assert_eq!(labels[60], DbscanLabel::Noise);
        let c0 = &labels[0];
        let c30 = &labels[30];
        assert!(matches!(c0, DbscanLabel::Cluster(_)));
        assert!(matches!(c30, DbscanLabel::Cluster(_)));
        assert_ne!(c0, c30);
        // All of blob 1 in one cluster.
        assert!(labels[..30].iter().all(|l| l == c0));
    }

    #[test]
    fn noise_scores_highest() {
        let pts = two_blobs_and_noise();
        let s = dbscan_scores(&pts, &Euclidean, &SlimTreeBuilder::default(), 0.5, 4);
        let max_cluster = s[..60].iter().cloned().fold(f64::MIN, f64::max);
        assert!(s[60] > max_cluster);
    }

    #[test]
    fn all_noise_when_eps_tiny() {
        let pts = two_blobs_and_noise();
        let labels = dbscan(&pts, &Euclidean, &SlimTreeBuilder::default(), 1e-9, 2);
        assert!(labels.iter().all(|l| *l == DbscanLabel::Noise));
    }

    #[test]
    fn one_cluster_when_eps_huge() {
        let pts = two_blobs_and_noise();
        let labels = dbscan(&pts, &Euclidean, &SlimTreeBuilder::default(), 100.0, 2);
        assert!(labels.iter().all(|l| *l == DbscanLabel::Cluster(0)));
    }
}
