//! Partial-fingerprint detection (paper Tab. III "Fingerprints"): ridge
//! sequences under edit distance, where the 10 partial prints form a
//! microcluster far from the 398 full prints.
//!
//! `cargo run --release -p mccatch --example fingerprints`

use mccatch::data::fingerprints;
use mccatch::eval::auroc;
use mccatch::index::SlimTreeBuilder;
use mccatch::metrics::Levenshtein;
use mccatch::McCatch;

fn main() {
    let data = fingerprints(398, 10, 11);
    println!(
        "detecting partial prints among {} ridge sequences…",
        data.len()
    );
    let out = McCatch::builder()
        .build()
        .expect("defaults are valid")
        .fit(data.points.clone(), Levenshtein, SlimTreeBuilder::default())
        .expect("fit")
        .detect();
    println!(
        "AUROC vs ground truth: {:.3}",
        auroc(&out.point_scores, &data.labels)
    );
    println!("outliers flagged: {}", out.num_outliers());

    // The partials should gel: report the cluster containing print #398.
    match out.cluster_of(398) {
        Some(mc) => {
            let partials_in = mc.members.iter().filter(|&&m| m >= 398).count();
            println!(
                "partial-print microcluster: size {} ({partials_in} partials), score {:.2}, bridge {:.1}",
                mc.cardinality(),
                mc.score,
                mc.bridge_length
            );
        }
        None => println!("partial prints not flagged (unexpected)"),
    }
    println!();
    println!("most anomalous sequences:");
    let mut ranked: Vec<(f64, usize)> = out
        .point_scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(score, i) in ranked.iter().take(12) {
        let p = &data.points[i];
        println!(
            "  #{i:<4} len {:>3} score {score:>6.2} {} {}",
            p.len(),
            if data.labels[i] { "partial" } else { "full   " },
            &p[..p.len().min(28)]
        );
    }
}
