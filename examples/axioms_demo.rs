//! Axioms demo (paper Fig. 2 / Sec. III): generate one scenario per
//! (axiom × inlier shape) and show that MCCATCH's scores always rank the
//! green microcluster above the red one.
//!
//! `cargo run --release -p mccatch --example axioms_demo [n_inliers]`

use mccatch::data::{axiom_scenario, Axiom, InlierShape};
use mccatch::index::KdTreeBuilder;
use mccatch::metrics::Euclidean;
use mccatch::McCatch;

fn main() {
    let n_inliers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    println!("MCCATCH axioms demo ({n_inliers} inliers per scenario)");
    println!();
    println!(
        "{:>12} {:>10} | {:>14} | {:>14} | verdict",
        "axiom", "shape", "red score", "green score"
    );
    let detector = McCatch::builder().build().expect("defaults are valid");
    let kd = KdTreeBuilder::default();
    for axiom in Axiom::ALL {
        for shape in InlierShape::ALL {
            let s = axiom_scenario(shape, axiom, n_inliers, 7);
            let out = detector
                .fit(s.data.points.clone(), Euclidean, kd)
                .expect("fit")
                .detect();
            let score_of = |ids: &[u32]| -> Option<(usize, f64)> {
                let mc = out.cluster_of(ids[0])?;
                Some((mc.cardinality(), mc.score))
            };
            match (score_of(&s.red), score_of(&s.green)) {
                (Some((rn, rs)), Some((gn, gs))) => {
                    let verdict = if gs > rs {
                        "green wins ✓"
                    } else {
                        "VIOLATED ✗"
                    };
                    println!(
                        "{:>12} {:>10} | {:>6.2} (m={rn:>3}) | {:>6.2} (m={gn:>3}) | {verdict}",
                        axiom.name(),
                        shape.name(),
                        rs,
                        gs
                    );
                }
                _ => println!(
                    "{:>12} {:>10} | a planted microcluster was missed",
                    axiom.name(),
                    shape.name()
                ),
            }
        }
    }
    println!();
    println!("Isolation axiom:   same sizes, green is farther   -> green must score higher");
    println!("Cardinality axiom: same bridges, green is smaller -> green must score higher");
}
