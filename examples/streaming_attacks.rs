//! Streaming variant of `network_attacks`: detect the 'DoS back'
//! microcluster in HTTP traffic **as it arrives**, instead of in one
//! batch pass.
//!
//! The first half of the synthetic KDD'99 HTTP analogue seeds the
//! sliding window (the reference model); the second half is streamed
//! event by event. Each event is scored immediately against the current
//! model and tagged with its generation, while a background worker
//! refits on the sliding window every `n/20` events and swaps the model
//! in atomically. The streaming AUROC over the second half is reported
//! against ground truth, along with the full `StreamStats`.
//!
//! `cargo run --release -p mccatch --example streaming_attacks -- 50000`

use mccatch::data::{http, http_dos_ids};
use mccatch::eval::auroc;
use mccatch::index::KdTreeBuilder;
use mccatch::metrics::Euclidean;
use mccatch::stream::{RefitPolicy, StreamConfig, StreamDetector};
use mccatch::McCatch;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    println!("generating HTTP analogue with {n} connections…");
    let data = http(n, 42);
    let dos = http_dos_ids(n);

    let half = n / 2;
    let seed: Vec<Vec<f64>> = data.points[..half].to_vec();
    let refit_every = (n as u64 / 20).max(1);

    let t0 = Instant::now();
    let stream = StreamDetector::new(
        StreamConfig {
            capacity: half.max(1),
            policy: RefitPolicy::EveryN(refit_every),
            ..StreamConfig::default()
        },
        McCatch::builder().build().expect("defaults are valid"),
        Euclidean,
        KdTreeBuilder::default(),
        seed,
    )
    .expect("valid streaming config");
    let t_seed = t0.elapsed();

    println!("\nMCCATCH streaming on HTTP ({n} connections, window {half})");
    println!("========================================================");
    println!("initial fit (first {half} events): {t_seed:.2?}");

    // Stream the second half, collecting the scores for evaluation.
    let t0 = Instant::now();
    let mut scores = Vec::with_capacity(n - half);
    let mut flagged = 0usize;
    let mut dos_flagged = 0usize;
    for (i, p) in data.points[half..].iter().enumerate() {
        let event = stream.ingest(p.clone());
        scores.push(event.score);
        flagged += event.flagged as usize;
        let id = (half + i) as u32;
        if event.flagged && dos.contains(&id) {
            dos_flagged += 1;
        }
    }
    let t_stream = t0.elapsed();
    let streamed = n - half;
    let events_per_sec = streamed as f64 / t_stream.as_secs_f64().max(1e-9);

    println!(
        "streamed {streamed} events in {t_stream:.2?} ({events_per_sec:.0} events/sec, \
         refits running in the background)"
    );
    println!("events flagged beyond the cutoff: {flagged}");

    let dos_in_stream = dos.iter().filter(|&&d| (d as usize) >= half).count();
    if dos_in_stream > 0 {
        println!("DoS events flagged at arrival: {dos_flagged}/{dos_in_stream}");
    }
    println!(
        "streaming AUROC vs ground truth (second half): {:.3}",
        auroc(&scores, &data.labels[half..])
    );

    // Scoring outpaces refitting by orders of magnitude, so on a fast
    // machine every background refit may still be pending here; pin the
    // model to the final window synchronously before reporting.
    let t0 = Instant::now();
    let generation = stream.refit_now().expect("refit");
    println!(
        "final synchronous refit on the window: {:.2?} -> generation {generation}",
        t0.elapsed()
    );

    let stats = stream.stats();
    println!("\nstream stats");
    println!(
        "  ingested / scored / evicted: {} / {} / {}",
        stats.events_ingested, stats.events_scored, stats.events_evicted
    );
    println!("  window: {}/{}", stats.window_len, stats.window_capacity);
    println!(
        "  refits completed/requested/coalesced: {}/{}/{}",
        stats.refits_completed, stats.refits_requested, stats.refits_coalesced
    );
    println!("  model generation: {}", stats.generation);
    println!(
        "  cumulative fit distance evals: {} (current model: {})",
        stats.fit_distance_evals, stats.model.distance_evals
    );
    println!(
        "  current model: {} points, {} outliers, {} microclusters",
        stats.model.num_points, stats.model.num_outliers, stats.model.num_microclusters
    );
}
