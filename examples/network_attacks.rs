//! Network-attack detection (paper Fig. 8(ii)): find the 30-connection
//! 'DoS back' microcluster in HTTP logs.
//!
//! The paper runs MCCATCH on 222K KDD'99 HTTP connections and finds a
//! 30-point microcluster of confirmed denial-of-service attacks in about
//! 3 minutes. This example reproduces the experiment on the synthetic HTTP
//! analogue (see DESIGN.md §4) — pass a size to scale:
//!
//! `cargo run --release -p mccatch --example network_attacks -- 222027`

use mccatch::data::{http, http_dos_ids};
use mccatch::eval::auroc;
use mccatch::index::KdTreeBuilder;
use mccatch::metrics::Euclidean;
use mccatch::McCatch;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    println!("generating HTTP analogue with {n} connections…");
    let data = http(n, 42);
    let dos = http_dos_ids(n);

    let detector = McCatch::builder().build().expect("defaults are valid");
    let t0 = Instant::now();
    // The erased serving handle: fit once, share `Arc<dyn Model<_>>`.
    let model = detector
        .fit(data.points.clone(), Euclidean, KdTreeBuilder::default())
        .expect("fit")
        .into_model();
    let out = model.detect_output();
    let elapsed = t0.elapsed();

    println!("\nMCCATCH on HTTP ({} connections)", data.len());
    println!("=====================================");
    println!("runtime:           {elapsed:.2?}");
    println!("outliers flagged:  {}", out.num_outliers());
    println!("microclusters:     {}", out.microclusters.len());
    println!(
        "AUROC vs ground truth: {:.3}",
        auroc(&out.point_scores, &data.labels)
    );

    // Did we recover the DoS microcluster as one entity?
    let dos_cluster = out.cluster_of(dos[0]);
    match dos_cluster {
        Some(mc) => {
            let recovered = dos.iter().filter(|d| mc.members.contains(d)).count();
            println!(
                "\nDoS microcluster: recovered {recovered}/{} members in one cluster",
                dos.len()
            );
            println!(
                "  cluster size {}, score {:.3}, bridge length {:.3}",
                mc.cardinality(),
                mc.score,
                mc.bridge_length
            );
            let rank = out
                .microclusters
                .iter()
                .position(|m| std::ptr::eq(m, mc))
                .unwrap_or(usize::MAX);
            println!("  rank in the most-strange-first list: {}", rank + 1);
        }
        None => println!("\nDoS microcluster NOT flagged (unexpected)"),
    }

    println!("\ntop 5 microclusters:");
    for (i, mc) in out.microclusters.iter().take(5).enumerate() {
        println!(
            "  #{} size={} score={:.3} bridge={:.3}",
            i + 1,
            mc.cardinality(),
            mc.score,
            mc.bridge_length
        );
    }
}
