//! Attention routing on satellite imagery (paper Fig. 1(i) and Fig. 8(i)).
//!
//! Each image is split into tiles; MCCATCH runs on the mean-RGB vectors.
//! On the Shanghai analogue it must spot the two 2-tile microclusters of
//! unusually colored roofs plus the scattered odd tiles; on Volcanoes, the
//! 3-tile snow microcluster at the summit.
//!
//! `cargo run --release -p mccatch --example satellite_tiles`

use mccatch::data::{shanghai, volcanoes, TileImage};
use mccatch::index::KdTreeBuilder;
use mccatch::metrics::Euclidean;
use mccatch::{McCatch, McCatchOutput};

fn report(img: &TileImage, out: &McCatchOutput) {
    println!(
        "\n{} ({} tiles, grid width {})",
        img.data.name,
        img.data.len(),
        img.width
    );
    println!("-------------------------------------------");
    println!("outliers flagged: {}", out.num_outliers());
    println!("microclusters:    {}", out.microclusters.len());
    for (ci, cluster) in img.planted_clusters.iter().enumerate() {
        match out.cluster_of(cluster[0]) {
            Some(mc) => {
                let recovered = cluster.iter().filter(|t| mc.members.contains(t)).count();
                println!(
                    "planted cluster #{}: recovered {recovered}/{} tiles together (score {:.2})",
                    ci + 1,
                    cluster.len(),
                    mc.score
                );
            }
            None => println!("planted cluster #{}: MISSED", ci + 1),
        }
    }
    let singles_found = img
        .planted_singletons
        .iter()
        .filter(|&&t| out.is_outlier(t))
        .count();
    println!(
        "planted singleton tiles flagged: {singles_found}/{}",
        img.planted_singletons.len()
    );
    println!("top 5 microclusters (tile -> row,col):");
    for (i, mc) in out.microclusters.iter().take(5).enumerate() {
        let coords: Vec<String> = mc
            .members
            .iter()
            .take(4)
            .map(|&t| format!("({},{})", t as usize / img.width, t as usize % img.width))
            .collect();
        println!(
            "  #{} size={} score={:.2} tiles {}",
            i + 1,
            mc.cardinality(),
            mc.score,
            coords.join(" ")
        );
    }
}

fn main() {
    let detector = McCatch::builder().build().expect("defaults are valid");
    let kd = KdTreeBuilder::default();

    let sh = shanghai(1);
    let out = detector
        .fit(sh.data.points.clone(), Euclidean, kd)
        .expect("fit")
        .detect();
    report(&sh, &out);

    let vo = volcanoes(1);
    let out = detector
        .fit(vo.data.points.clone(), Euclidean, kd)
        .expect("fit")
        .detect();
    report(&vo, &out);
}
