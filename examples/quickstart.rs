//! Quickstart: detect and rank microclusters in a small 2-d dataset.
//!
//! Builds the kind of scene the paper's Fig. 3 uses for intuition — a dense
//! inlier blob, a 6-point microcluster, a 2-point microcluster and two
//! 'one-off' outliers — prints the ranked microclusters with their
//! compression-based scores, and then serves the fitted model through the
//! type-erased `ModelStore` handle, swapping in a refit without ever
//! re-scoring readers against a half-updated model.
//!
//! Run with: `cargo run --release -p mccatch --example quickstart`

use mccatch::index::KdTreeBuilder;
use mccatch::metrics::Euclidean;
use mccatch::serve::ModelStore;
use mccatch::McCatch;
use std::sync::Arc;

fn main() {
    // Inliers: a 20x20 grid blob around the origin.
    let mut points: Vec<Vec<f64>> = (0..400)
        .map(|i| vec![(i % 20) as f64 * 0.25, (i / 20) as f64 * 0.25])
        .collect();
    let n_inliers = points.len();

    // A 6-point microcluster far away: coordinated anomalies.
    for k in 0..6 {
        points.push(vec![
            40.0 + 0.2 * (k % 3) as f64,
            35.0 + 0.2 * (k / 3) as f64,
        ]);
    }
    // A 2-point microcluster: a suspicious pair.
    points.push(vec![-20.0, 10.0]);
    points.push(vec![-20.2, 10.1]);
    // Two singletons at different distances.
    points.push(vec![25.0, -30.0]);
    points.push(vec![90.0, 90.0]);

    // Configure (validated — invalid knobs come back as McCatchError
    // values), fit once (tree + diameter + radius grid), then detect.
    // `fit` takes ownership: the returned handle has no borrowed
    // lifetime, so it could just as well be returned from this function
    // or moved into a server thread.
    let detector = McCatch::builder().build().expect("defaults are valid");
    let fitted = detector
        .fit(points.clone(), Euclidean, KdTreeBuilder::default())
        .expect("fit is infallible for valid params");
    let out = fitted.detect();

    println!("MCCATCH quickstart");
    println!("==================");
    println!("points:          {}", points.len());
    println!("diameter (est.): {:.2}", out.diameter);
    println!("cutoff d:        {:.4}", out.cutoff.d);
    println!("outliers found:  {}", out.num_outliers());
    println!();
    println!("microclusters, most strange first:");
    println!(
        "{:>4}  {:>6}  {:>9}  {:>9}  members",
        "rank", "size", "score", "bridge"
    );
    for (rank, mc) in out.microclusters.iter().enumerate() {
        let preview: Vec<String> = mc.members.iter().take(6).map(|m| m.to_string()).collect();
        let ellipsis = if mc.members.len() > 6 { ", …" } else { "" };
        println!(
            "{:>4}  {:>6}  {:>9.3}  {:>9.3}  [{}{}]",
            rank + 1,
            mc.cardinality(),
            mc.score,
            mc.bridge_length,
            preview.join(", "),
            ellipsis
        );
    }

    // Sanity: all planted anomalies flagged, no inlier flagged.
    let flagged_inliers = out
        .outliers
        .iter()
        .filter(|&&i| (i as usize) < n_inliers)
        .count();
    println!();
    println!(
        "planted anomalies flagged: {}/10; inliers flagged: {}",
        out.num_outliers().min(10),
        flagged_inliers
    );

    // Serving path: erase the metric/index generics into `Arc<dyn Model>`
    // and put it behind a swappable store — the shape of a real service.
    let store = Arc::new(ModelStore::new(fitted.into_model()));
    let queries = vec![
        vec![2.6, 2.6],     // inside the blob
        vec![40.1, 35.1],   // lands on the known microcluster
        vec![-70.0, -70.0], // nowhere near anything
    ];
    let scores = store.score_batch(&queries);
    println!();
    println!("held-out query scores (higher = stranger):");
    for (q, s) in queries.iter().zip(&scores) {
        println!("  {q:?} -> {s:.3}");
    }

    // Concurrent readers share the store; a refit swaps in atomically.
    let reader = {
        let store = Arc::clone(&store);
        let queries = queries.clone();
        std::thread::spawn(move || store.score_batch(&queries))
    };
    let refit = detector
        .fit(points, Euclidean, KdTreeBuilder::default())
        .expect("refit");
    let old = store.swap(refit.into_model());
    println!();
    println!(
        "swapped to generation {} (old model served {} points); reader saw {:?}",
        store.generation(),
        old.stats().num_points,
        reader.join().expect("reader thread")
    );
}
