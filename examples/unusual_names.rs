//! Unusual-name detection (paper Fig. 1(ii)): nondimensional data under
//! the L-Edit (Levenshtein) distance.
//!
//! The paper scores 5,050 last names and finds that the 50 non-English
//! names receive the highest anomaly scores (AUROC 0.75 on the real
//! corpus). This example reproduces the experiment on the synthetic name
//! generator: English-phonotactics inliers versus outliers drawn from
//! Italian / Japanese / Polish / Greek / Scandinavian profiles.
//!
//! `cargo run --release -p mccatch --example unusual_names`

use mccatch::data::last_names;
use mccatch::eval::auroc;
use mccatch::index::SlimTreeBuilder;
use mccatch::metrics::Levenshtein;
use mccatch::McCatch;
use std::time::Instant;

fn main() {
    let n_inliers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let data = last_names(n_inliers, 50, 7);
    println!(
        "detecting unusual names among {} (50 planted non-English)…",
        data.len()
    );

    let t0 = Instant::now();
    let out = McCatch::builder()
        .build()
        .expect("defaults are valid")
        .fit(data.points.clone(), Levenshtein, SlimTreeBuilder::default())
        .expect("fit")
        .detect();
    println!("runtime: {:.2?}", t0.elapsed());

    println!(
        "AUROC vs ground truth: {:.3}  (paper: 0.75 on the real corpus)",
        auroc(&out.point_scores, &data.labels)
    );
    println!("outliers flagged: {}", out.num_outliers());

    // Show the most anomalous names.
    let mut ranked: Vec<(f64, usize)> = out
        .point_scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    println!("\nhighest-scored names:");
    for &(score, i) in ranked.iter().take(15) {
        println!(
            "  {:>20}  score {:.2}  {}",
            data.points[i],
            score,
            if data.labels[i] { "(non-English)" } else { "" }
        );
    }
    println!("\nlowest-scored names:");
    for &(score, i) in ranked.iter().rev().take(5) {
        println!("  {:>20}  score {:.2}", data.points[i], score);
    }
}
