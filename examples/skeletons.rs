//! Unusual-skeleton detection (paper Fig. 1(iii)): graph data under tree
//! edit distance.
//!
//! The paper analyses 203 skeleton graphs (200 human silhouettes, 3 wild
//! animals) with graph edit distance and reports a perfect AUROC of 1.0.
//! This example runs the pipeline on the skeleton-tree generator with the
//! exact Zhang–Shasha tree edit distance.
//!
//! `cargo run --release -p mccatch --example skeletons`

use mccatch::data::skeletons;
use mccatch::eval::auroc;
use mccatch::index::SlimTreeBuilder;
use mccatch::metrics::TreeEditDistance;
use mccatch::McCatch;
use std::time::Instant;

fn main() {
    let data = skeletons(200, 3);
    println!(
        "detecting unusual skeletons among {} (3 wild animals planted)…",
        data.len()
    );

    let t0 = Instant::now();
    let out = McCatch::builder()
        .build()
        .expect("defaults are valid")
        .fit(
            data.points.clone(),
            TreeEditDistance,
            SlimTreeBuilder::default(),
        )
        .expect("fit")
        .detect();
    println!("runtime: {:.2?}", t0.elapsed());

    let score = auroc(&out.point_scores, &data.labels);
    println!("AUROC vs ground truth: {score:.3}  (paper: 1.0 on the real corpus)");
    println!("outliers flagged: {}", out.num_outliers());

    println!("\nwild-animal skeleton ranks (200=quadruped, 201=snake, 202=bird):");
    let mut ranked: Vec<(f64, usize)> = out
        .point_scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    for target in 200..203usize {
        let rank = ranked.iter().position(|&(_, i)| i == target).unwrap() + 1;
        println!(
            "  skeleton {target}: rank {rank}/{} (score {:.2}, {} nodes)",
            data.len(),
            out.point_scores[target],
            data.points[target].size()
        );
    }
}
